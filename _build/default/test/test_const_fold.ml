(* Constant folding tests: what folds, what must not, and the branch
   exclusion predicate used by the miss-rate metric. *)

open Cfront

(* Fold the condition of the first if-statement in f. *)
let fold_condition src =
  let tu = Parser.parse_string ~file:"t.c" src in
  let tc = Typecheck.check tu in
  let result = ref None in
  List.iter
    (function
      | Ast.Gfun f ->
        Ast.iter_stmt f.Ast.f_body
          ~on_stmt:(fun s ->
            match s.Ast.snode with
            | Ast.Sif (c, _, _) when !result = None ->
              result := Some (Const_fold.eval tc c)
            | _ -> ())
          ~on_expr:(fun _ -> ())
      | _ -> ())
    tu.Ast.globals;
  match !result with
  | Some v -> v
  | None -> Alcotest.fail "no if statement found"

let wrap cond = Printf.sprintf "int f(int x) { if (%s) return 1; return 0; }" cond

let check_int name cond expected =
  match fold_condition (wrap cond) with
  | Some (Const_fold.Cint n) -> Alcotest.(check int) name expected n
  | Some (Const_fold.Cfloat _) -> Alcotest.failf "%s: folded to float" name
  | None -> Alcotest.failf "%s: did not fold" name

let check_none name cond =
  match fold_condition (wrap cond) with
  | None -> ()
  | Some _ -> Alcotest.failf "%s: should not fold" name

let test_folds () =
  check_int "arith" "1 + 2 * 3" 7;
  check_int "comparison" "3 < 4" 1;
  check_int "negation" "!(2 > 1)" 0;
  check_int "bitops" "(0xF0 | 0x0F) & 0xFF" 255;
  check_int "shift" "1 << 10" 1024;
  check_int "conditional" "0 ? 9 : 8" 8;
  check_int "char arith" "'a' + 1" 98;
  check_int "cast" "(int)2.9" 2;
  check_int "division" "7 / 2" 3;
  check_int "modulo" "-7 % 2" (-1)

let test_short_circuit_folding () =
  (* 0 && x folds even though x is dynamic *)
  check_int "false && dynamic" "0 && x" 0;
  check_int "true || dynamic" "1 || x" 1;
  check_none "true && dynamic" "1 && x";
  check_none "false || dynamic" "0 || x"

let test_sizeof_folds () =
  check_int "sizeof int" "sizeof(int) == 1" 1;
  (* struct sizes are in cells *)
  let src =
    "struct s { int a; double b; int c[2]; };\n\
     int f(int x) { if (sizeof(struct s) == 4) return 1; return 0; }"
  in
  match fold_condition src with
  | Some (Const_fold.Cint 1) -> ()
  | _ -> Alcotest.fail "sizeof struct"

let test_enum_folds () =
  let src =
    "enum { A = 3, B };\nint f(int x) { if (A + B == 7) return 1; return 0; }"
  in
  match fold_condition src with
  | Some (Const_fold.Cint 1) -> ()
  | _ -> Alcotest.fail "enum constants fold"

let test_dynamic_not_folded () =
  check_none "variable" "x";
  check_none "variable compare" "x == 0";
  check_none "call" "f(x)";
  check_none "assignment" "x = 1";
  check_none "increment" "x++";
  check_none "division by zero" "1 / 0"

let test_float_folds () =
  match fold_condition (wrap "1.5 * 2.0 > 2.9") with
  | Some v -> Alcotest.(check bool) "float compare" true (Const_fold.is_true v)
  | None -> Alcotest.fail "float folding"

let test_is_constant_condition () =
  let tu =
    Parser.parse_string ~file:"t.c"
      "int f(int x) { while (1) { if (x) break; } return 0; }"
  in
  let tc = Typecheck.check tu in
  let found = ref [] in
  List.iter
    (function
      | Ast.Gfun f ->
        Ast.iter_stmt f.Ast.f_body
          ~on_stmt:(fun s ->
            match s.Ast.snode with
            | Ast.Swhile (c, _) ->
              found := ("while", Const_fold.is_constant_condition tc c) :: !found
            | Ast.Sif (c, _, _) ->
              found := ("if", Const_fold.is_constant_condition tc c) :: !found
            | _ -> ())
          ~on_expr:(fun _ -> ())
      | _ -> ())
    tu.Ast.globals;
  Alcotest.(check bool) "while(1) is constant" true (List.assoc "while" !found);
  Alcotest.(check bool) "if(x) is not" false (List.assoc "if" !found)

let suite =
  [ Alcotest.test_case "folds" `Quick test_folds;
    Alcotest.test_case "short-circuit" `Quick test_short_circuit_folding;
    Alcotest.test_case "sizeof" `Quick test_sizeof_folds;
    Alcotest.test_case "enum" `Quick test_enum_folds;
    Alcotest.test_case "dynamic expressions" `Quick test_dynamic_not_folded;
    Alcotest.test_case "floats" `Quick test_float_folds;
    Alcotest.test_case "constant-condition predicate" `Quick
      test_is_constant_condition ]
