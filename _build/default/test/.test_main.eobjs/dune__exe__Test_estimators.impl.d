test/test_estimators.ml: Alcotest Array Cfg_ir Cfront Cinterp Core Float List Option Parser Pretty Suite Typecheck
