(* Dominance / natural-loop tests, the structural estimator built on
   them, and profile serialization round-trips. *)

open Cfront
module Cfg = Cfg_ir.Cfg
module Dominance = Cfg_ir.Dominance
module Pipeline = Core.Pipeline
module Profile = Cinterp.Profile

let compile src =
  let tu = Parser.parse_string ~file:"t.c" src in
  let tc = Typecheck.check tu in
  Cfg_ir.Build.build tc

let fn_of src name = Option.get (Cfg.find_fn (compile src) name)

let test_idom_diamond () =
  let fn =
    fn_of "int f(int x) { int r; if (x) r = 1; else r = 2; return r; }" "f"
  in
  let idom = Dominance.idoms fn in
  let entry = fn.Cfg.fn_entry in
  Alcotest.(check int) "entry self-dominates" entry idom.(entry);
  (* every block is dominated by the entry *)
  Array.iteri
    (fun b _ ->
      Alcotest.(check bool)
        (Printf.sprintf "entry dominates B%d" b)
        true
        (Dominance.dominates idom entry b))
    fn.Cfg.fn_blocks;
  (* the join block's idom is the entry (branch point), not an arm *)
  let join =
    Array.to_list fn.Cfg.fn_blocks
    |> List.find (fun (b : Cfg.block) -> List.length b.Cfg.b_preds = 2)
  in
  Alcotest.(check int) "join idom is the branch" entry idom.(join.Cfg.b_id)

let test_loop_depths () =
  let fn =
    fn_of
      "int f(int n) { int i, j, s = 0;\n\
       for (i = 0; i < n; i++) {\n\
      \  for (j = 0; j < n; j++) s += j;\n\
      \  s -= i;\n\
       }\n\
       return s; }"
      "f"
  in
  let loops = Dominance.analyze fn in
  Alcotest.(check int) "two loop headers" 2
    (List.length loops.Dominance.headers);
  let max_depth = Array.fold_left max 0 loops.Dominance.depth in
  Alcotest.(check int) "max nesting 2" 2 max_depth;
  (* the entry (before the outer loop) is at depth 0 unless merged into
     the header; the return block is at depth 0 *)
  let return_block =
    Array.to_list fn.Cfg.fn_blocks
    |> List.find (fun (b : Cfg.block) ->
         match b.Cfg.b_term with Cfg.Treturn _ -> true | _ -> false)
  in
  Alcotest.(check int) "return at depth 0" 0
    loops.Dominance.depth.(return_block.Cfg.b_id)

let test_while_and_goto_loops () =
  let fn =
    fn_of
      "int f(int n) { int s = 0; top: s += n; n--; if (n > 0) goto top; return s; }"
      "f"
  in
  let loops = Dominance.analyze fn in
  Alcotest.(check int) "goto loop found" 1
    (List.length loops.Dominance.headers)

let test_no_loops () =
  let fn = fn_of "int f(int x) { if (x) return 1; return 0; }" "f" in
  let loops = Dominance.analyze fn in
  Alcotest.(check (list int)) "no headers" [] loops.Dominance.headers;
  Array.iter
    (fun d -> Alcotest.(check int) "all depth 0" 0 d)
    loops.Dominance.depth

let test_structural_estimator () =
  let fn =
    fn_of
      "int f(int n) { int i, j, s = 0;\n\
       for (i = 0; i < n; i++) for (j = 0; j < n; j++) s++;\n\
       return s; }"
      "f"
  in
  let freqs = Core.Structural_estimator.block_freqs fn in
  Alcotest.(check (float 1e-9)) "inner body k^2" 25.0
    (Array.fold_left max 0.0 freqs);
  (* structural sees the same nesting the AST walk does on clean loops *)
  Alcotest.(check (float 1e-9)) "outside loops = 1" 1.0
    (Array.fold_left min infinity freqs)

let test_structural_on_suite () =
  (* no NaNs, no negatives, headers at least as frequent as exits *)
  List.iter
    (fun (p : Suite.Bench_prog.t) ->
      let prog =
        (Pipeline.compile ~name:p.Suite.Bench_prog.name
           p.Suite.Bench_prog.source)
          .Pipeline.prog
      in
      List.iter
        (fun fn ->
          Array.iter
            (fun v ->
              if Float.is_nan v || v < 1.0 -. 1e-9 then
                Alcotest.failf "bad structural frequency %f in %s" v
                  fn.Cfg.fn_name)
            (Core.Structural_estimator.block_freqs_refined fn))
        prog.Cfg.prog_fns)
    Suite.Registry.all

(* --- profile serialization ------------------------------------------- *)

let test_profile_roundtrip () =
  let c =
    Pipeline.compile ~name:"t"
      {|
int helper(int x) { if (x > 2) return x; return -x; }
int main(void) { int i, s = 0; for (i = 0; i < 7; i++) s += helper(i); return s & 1; }
|}
  in
  let p = (Pipeline.run_once c { Pipeline.argv = []; input = "" }).Cinterp.Eval.profile in
  let text = Profile.save p in
  let q = Profile.load text in
  Alcotest.(check (float 1e-9)) "work preserved" p.Profile.work q.Profile.work;
  Alcotest.(check int) "site array length"
    (Array.length p.Profile.site_counts)
    (Array.length q.Profile.site_counts);
  Hashtbl.iter
    (fun name (c1 : Profile.fn_counters) ->
      let c2 = Profile.fn_counters q name in
      Alcotest.(check (list (float 0.0)))
        (name ^ " blocks")
        (Array.to_list c1.Profile.block_counts)
        (Array.to_list c2.Profile.block_counts);
      Alcotest.(check (list (float 0.0)))
        (name ^ " taken")
        (Array.to_list c1.Profile.branch_taken)
        (Array.to_list c2.Profile.branch_taken))
    p.Profile.fns;
  (* and a stable double round-trip *)
  Alcotest.(check string) "idempotent text" text (Profile.save q)

let test_profile_load_errors () =
  (match Profile.load "garbage" with
  | exception Profile.Parse_error _ -> ()
  | _ -> Alcotest.fail "garbage accepted");
  match Profile.load "profile-v1\nfn broken\n" with
  | exception Profile.Parse_error _ -> ()
  | exception Failure _ -> ()
  | _ -> Alcotest.fail "truncated profile accepted"

let suite =
  [ Alcotest.test_case "idoms on a diamond" `Quick test_idom_diamond;
    Alcotest.test_case "loop depths" `Quick test_loop_depths;
    Alcotest.test_case "goto loop" `Quick test_while_and_goto_loops;
    Alcotest.test_case "loop-free" `Quick test_no_loops;
    Alcotest.test_case "structural estimator" `Quick test_structural_estimator;
    Alcotest.test_case "structural on the suite" `Slow
      test_structural_on_suite;
    Alcotest.test_case "profile round-trip" `Quick test_profile_roundtrip;
    Alcotest.test_case "profile load errors" `Quick test_profile_load_errors ]
