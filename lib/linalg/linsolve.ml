(* Linear-system front end for the Markov estimators.

   The Markov models translate a CFG or call graph into the linear system
   (I - P^T) x = e (paper Figure 7). Historically this module was only
   dense Gaussian elimination with partial pivoting — entirely adequate
   for the 16-program suite, a wall for the corpus engine and the
   10^3-10^5-node synthetic graphs. It now fronts two builds of the same
   system:

   - dense: scratch-backed n*n build, elimination via [solve_inplace].
     Bit-for-bit the historical behavior — the committed BASELINE.json
     stays authoritative for this path, and it is the default.
   - sparse: CSR build ([Csr]) solved iteratively ([Iterative]),
     Gauss-Seidel first, power iteration second, and the dense solver as
     the terminal fallback so the estimator-level damping/repair chains
     above still see the exact solution (valid or not) they key off.

   Selection is a process-wide [solver_mode] set once at startup from
   [--solver dense|sparse|auto]; [Auto] picks sparse from
   [auto_sparse_threshold] nodes up. Singular systems are reported with
   the offending column so callers can diagnose structurally dead
   nodes. *)

exception Singular of int (* pivot column with no usable pivot *)

let epsilon = 1e-12

type mode = Dense | Sparse | Auto

(* Dense is the default: bit-identical to the committed baseline. *)
let solver_mode : mode ref = ref Dense

let mode_to_string = function
  | Dense -> "dense"
  | Sparse -> "sparse"
  | Auto -> "auto"

let mode_of_string = function
  | "dense" -> Some Dense
  | "sparse" -> Some Sparse
  | "auto" -> Some Auto
  | _ -> None

(* [Auto] switches to the sparse path at this system size: below it the
   dense elimination is at worst tens of microseconds and exactness is
   worth more than speed; above it O(n^3) starts to tell. *)
let auto_sparse_threshold = 128

(* Largest n for which the sparse path may fall back to the dense
   solver: an n*n double matrix above this (> ~3 GB) is not a fallback,
   it is an OOM. Beyond the limit a divergent iterative solve reports
   [Singular] instead, handing control to the estimator-level damping
   chain (which damps and retries — exactly what a divergent undamped
   system needs). *)
let dense_fallback_limit = 20_000

(* Solve A x = b, destroying [m] and [x]; returns [x]. Callers that
   build a throwaway system (the Markov estimators) use this directly to
   skip the defensive O(n²) copy in [solve]. [m.data] may be an
   oversized scratch buffer; only the first rows*cols entries are
   read or written. *)
let solve_inplace (m : Matrix.t) (x : float array) : float array =
  let n = m.Matrix.rows in
  if m.Matrix.cols <> n then invalid_arg "Linsolve.solve: not square";
  if Array.length x <> n then invalid_arg "Linsolve.solve: bad rhs";
  Obs.Probe.count "linsolve.solve";
  Obs.Hist.time "linsolve.solve.ns" @@ fun () ->
  Obs.Probe.with_span "linsolve" @@ fun () ->
  let data = m.Matrix.data in
  let idx i j = (i * n) + j in
  (* Singularity is judged relative to the matrix scale (largest |entry|
     of the input): an absolute cutoff misclassifies well-conditioned
     systems whose entries are uniformly tiny and accepts numerically
     meaningless pivots on huge ones. All-zero matrices fall back to the
     absolute epsilon, which rejects their zero pivots. The scan is
     index-bounded, never [Array.iter]: scratch-backed [data] extends
     past the live n*n prefix. *)
  let scale = ref 0.0 in
  for k = 0 to (n * n) - 1 do
    let v = abs_float data.(k) in
    if v > !scale then scale := v
  done;
  let threshold = epsilon *. if !scale > 0.0 then !scale else 1.0 in
  for col = 0 to n - 1 do
    (* partial pivot: largest |value| in this column at or below [col] *)
    let pivot_row = ref col in
    for r = col + 1 to n - 1 do
      if abs_float data.(idx r col) > abs_float data.(idx !pivot_row col)
      then pivot_row := r
    done;
    let pivot = data.(idx !pivot_row col) in
    if abs_float pivot < threshold then begin
      Obs.Probe.count "linsolve.singular";
      raise (Singular col)
    end;
    Obs.Probe.observe "linsolve.pivot" (abs_float pivot);
    if !pivot_row <> col then begin
      for j = 0 to n - 1 do
        let tmp = data.(idx col j) in
        data.(idx col j) <- data.(idx !pivot_row j);
        data.(idx !pivot_row j) <- tmp
      done;
      let tmp = x.(col) in
      x.(col) <- x.(!pivot_row);
      x.(!pivot_row) <- tmp
    end;
    (* eliminate below *)
    for r = col + 1 to n - 1 do
      let factor = data.(idx r col) /. data.(idx col col) in
      if factor <> 0.0 then begin
        data.(idx r col) <- 0.0;
        for j = col + 1 to n - 1 do
          data.(idx r j) <- data.(idx r j) -. (factor *. data.(idx col j))
        done;
        x.(r) <- x.(r) -. (factor *. x.(col))
      end
    done
  done;
  (* back substitution *)
  for row = n - 1 downto 0 do
    let s = ref x.(row) in
    for j = row + 1 to n - 1 do
      s := !s -. (data.(idx row j) *. x.(j))
    done;
    x.(row) <- !s /. data.(idx row row)
  done;
  x

(* Solve A x = b on copies; [a] and [b] are left untouched. *)
let solve (a : Matrix.t) (b : float array) : float array =
  solve_inplace (Matrix.copy a) (Array.copy b)

let bad_arc src dst n =
  invalid_arg
    (Printf.sprintf
       "Linsolve.markov_frequencies: arc (%d -> %d) outside [0, %d)" src dst
       n)

(* Dense build of (I - scale*P^T) x = e_source on the per-domain scratch
   buffer, eliminated in place. Arithmetically identical to the former
   Matrix.create/add_to build: same zero initialization, same
   accumulation order, same [-. (p *. scale)] contributions — this path
   must stay bit-for-bit stable against BASELINE.json. The solution
   vector is freshly allocated (it escapes). *)
let solve_dense ~(scale : float) ~(n : int) ~(source : int)
    (arcs : Csr.arcs_iter) : float array =
  let s = Scratch.get () in
  let data = Scratch.dense s (n * n) in
  Array.fill data 0 (n * n) 0.0;
  for i = 0 to n - 1 do
    data.((i * n) + i) <- 1.0
  done;
  arcs (fun src dst p ->
      if src < 0 || src >= n || dst < 0 || dst >= n then bad_arc src dst n;
      let k = (dst * n) + src in
      data.(k) <- data.(k) +. (-.(p *. scale)));
  let b = Array.make n 0.0 in
  b.(source) <- 1.0;
  solve_inplace { Matrix.rows = n; cols = n; data } b

(* Sparse path: CSR build, Gauss-Seidel, then power iteration, then the
   dense solver as terminal fallback (size permitting). Returns a fresh
   solution vector. *)
let solve_sparse ~(scale : float) ~(n : int) ~(source : int)
    (arcs : Csr.arcs_iter) : float array =
  Obs.Probe.count "linsolve.sparse.solve";
  Obs.Hist.time "linsolve.solve.ns" @@ fun () ->
  Obs.Probe.with_span "linsolve.sparse" @@ fun () ->
  let a = Csr.of_markov_arcs ~scale ~n arcs in
  let b = Scratch.rhs (Scratch.get ()) n in
  Array.fill b 0 n 0.0;
  b.(source) <- 1.0;
  let x = Array.make n 0.0 in
  match Iterative.gauss_seidel ~epsilon a b x with
  | Iterative.Converged _ -> x
  | Iterative.Diverged -> (
      Obs.Probe.count "linsolve.fallback.power";
      match Iterative.power ~epsilon a b x with
      | Iterative.Converged _ -> x
      | Iterative.Diverged ->
          Obs.Probe.count "linsolve.fallback.dense";
          if n > dense_fallback_limit then begin
            (* the dense system would not fit; report the failure as
               singular so the estimator's damping chain retries *)
            Obs.Probe.count "linsolve.singular";
            raise (Singular 0)
          end;
          solve_dense ~scale ~n ~source arcs)

(* Solve the Markov frequency system:
     x_source = 1 + sum over arcs (j -> source, p) of p * x_j
     x_i      =     sum over arcs (j -> i, p)      of p * x_j
   [arcs] enumerates weighted arcs (from, to, p); it must be re-runnable
   and order-stable (the builds make multiple passes). The source gets
   one unit of external flow (the function entry / the invocation of
   main); incoming arcs still contribute, which matters when the entry
   block is also a loop header or main is called recursively. Nodes
   unreachable from the source get frequency 0.

   [scale] multiplies every arc probability before it enters the system;
   the Markov estimators use it to damp near-singular systems without
   rebuilding the arc list. [scale = 1.0] is exact identity: [p *. 1.0]
   is [p] bitwise, so the default changes nothing. *)
let markov_frequencies_iter ?(scale = 1.0) ~(n : int) ~(source : int)
    (arcs : Csr.arcs_iter) : float array =
  if n = 0 then [||]
  else begin
    (* An out-of-range source is a malformed graph, not a singular
       system: report it as a typed Invalid_argument the fault taxonomy
       can attribute, not an index error deep in the solver. *)
    if source < 0 || source >= n then
      invalid_arg
        (Printf.sprintf
           "Linsolve.markov_frequencies: source %d outside [0, %d)" source n);
    let sparse () = solve_sparse ~scale ~n ~source arcs in
    let dense () = solve_dense ~scale ~n ~source arcs in
    match !solver_mode with
    | Dense -> dense ()
    | Sparse -> sparse ()
    | Auto -> if n >= auto_sparse_threshold then sparse () else dense ()
  end

(* List-based convenience wrapper around [markov_frequencies_iter]. *)
let markov_frequencies ?(scale = 1.0) ~(n : int) ~(source : int)
    (arcs : (int * int * float) list) : float array =
  markov_frequencies_iter ~scale ~n ~source (fun f ->
      List.iter (fun (src, dst, p) -> f src dst p) arcs)
