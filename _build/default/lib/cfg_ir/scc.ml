(* Tarjan's strongly-connected components over an integer graph.

   Used by the inter-procedural estimators: [all_rec] needs "is this
   function in any recursive SCC", and the Markov call-graph repair loop
   re-solves offending SCCs in isolation (paper section 5.2.2). *)

type result = {
  component : int array;       (* node -> component id *)
  components : int list array; (* component id -> members *)
}

(* [compute n succs] where nodes are [0, n) and [succs i] lists the
   successors of [i]. Component ids follow Tarjan completion order (a
   component is completed only after all components it reaches). *)
let compute (n : int) (succs : int -> int list) : result =
  let index = Array.make n (-1) in
  let lowlink = Array.make n 0 in
  let on_stack = Array.make n false in
  let stack = ref [] in
  let next_index = ref 0 in
  let component = Array.make n (-1) in
  let comps = ref [] in
  let n_comps = ref 0 in
  (* Explicit work stack to avoid deep recursion on long chains. *)
  let rec strongconnect v =
    index.(v) <- !next_index;
    lowlink.(v) <- !next_index;
    incr next_index;
    stack := v :: !stack;
    on_stack.(v) <- true;
    List.iter
      (fun w ->
        if index.(w) < 0 then begin
          strongconnect w;
          lowlink.(v) <- min lowlink.(v) lowlink.(w)
        end
        else if on_stack.(w) then lowlink.(v) <- min lowlink.(v) index.(w))
      (succs v);
    if lowlink.(v) = index.(v) then begin
      let members = ref [] in
      let continue_ = ref true in
      while !continue_ do
        match !stack with
        | w :: rest ->
          stack := rest;
          on_stack.(w) <- false;
          component.(w) <- !n_comps;
          members := w :: !members;
          if w = v then continue_ := false
        | [] -> continue_ := false
      done;
      comps := !members :: !comps;
      incr n_comps
    end
  in
  for v = 0 to n - 1 do
    if index.(v) < 0 then strongconnect v
  done;
  let components = Array.make (max 1 !n_comps) [] in
  List.iteri (fun i members -> components.(i) <- members) (List.rev !comps);
  { component; components }

(* Is node [v] part of a cycle (an SCC of size > 1, or a self-loop)? *)
let in_cycle (r : result) (succs : int -> int list) (v : int) : bool =
  match r.components.(r.component.(v)) with
  | [ single ] -> List.mem single (succs single)
  | _ :: _ :: _ -> true
  | [] -> false
