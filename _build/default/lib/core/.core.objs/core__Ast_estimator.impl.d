lib/core/ast_estimator.ml: Array Branch_predictor Cfg_ir Cfront Config Hashtbl List Loop_model Option
