lib/core/inter_simple.mli: Cfg_ir
