(* Protocol-level tests for the serve daemon, driven end-to-end: a
   scripted newline-delimited session goes in through a real channel
   pair, [Driver.Serve.serve] runs it to EOF, and the response lines
   are parsed back with the same [Obs.Json] reader the daemon uses.
   What is pinned down:

   - framing: one response line per request line, in request order,
     across multiple blank-line-separated batches;
   - the warm path: a repeated analyze reports a program cache hit,
     zero function misses, and bit-identical scores;
   - fault isolation: a program that fails to parse produces one error
     response carrying the fault taxonomy, and its batch neighbours
     are answered normally;
   - malformed request lines are answered ([id] null) without killing
     the session;
   - the control verbs: scores, invalidate, stats, resize, shutdown —
     including the rule that requests behind a shutdown in the same
     batch are rejected. *)

module Serve = Driver.Serve
module Incr = Driver.Incr
module Parallel = Driver.Parallel
module Json = Obs.Json

(* Run a scripted session: the request lines (already framed — include
   "" elements for batch separators) go through a temp file pair. The
   daemon always starts from an empty store and jobs = 1 so tests are
   order-independent. *)
(* [run_session_dirty] keeps whatever cache/probe state the test set up
   beforehand — the telemetry tests need to observe a daemon that
   starts mid-life. *)
let rec run_session_dirty (lines : string list) : Json.t list =
  let in_path = Filename.temp_file "serve_in" ".ndjson" in
  let out_path = Filename.temp_file "serve_out" ".ndjson" in
  Fun.protect
    ~finally:(fun () ->
      Sys.remove in_path;
      Sys.remove out_path;
      Incr.clear ())
    (fun () ->
      let oc = open_out in_path in
      List.iter
        (fun l ->
          output_string oc l;
          output_char oc '\n')
        lines;
      close_out oc;
      let ic = open_in in_path in
      let out = open_out out_path in
      Fun.protect
        ~finally:(fun () ->
          close_in_noerr ic;
          close_out_noerr out)
        (fun () -> Serve.serve ic out);
      let ic = open_in out_path in
      let rec read acc =
        match input_line ic with
        | line -> read (Json.parse_exn line :: acc)
        | exception End_of_file ->
          close_in ic;
          List.rev acc
      in
      read [])

and run_session (lines : string list) : Json.t list =
  Incr.clear ();
  Incr.reset_stats ();
  Parallel.set_jobs 1;
  run_session_dirty lines

let req fields = Json.to_compact_string (Json.Obj fields)

let analyze ?(id = 0) name source =
  req
    [ ("id", Json.Num (float_of_int id)); ("op", Json.Str "analyze");
      ("name", Json.Str name); ("source", Json.Str source) ]

let str_field name j =
  match Option.bind (Json.member name j) Json.to_str with
  | Some s -> s
  | None -> Alcotest.failf "response missing string field %S" name

let num_field name j =
  match Option.bind (Json.member name j) Json.to_num with
  | Some n -> n
  | None -> Alcotest.failf "response missing numeric field %S" name

let bool_field name j =
  match Json.member name j with
  | Some (Json.Bool b) -> b
  | _ -> Alcotest.failf "response missing bool field %S" name

let ok_of j = bool_field "ok" j

let id_of j = Option.value ~default:Json.Null (Json.member "id" j)

let good_source = "int f(int x) { return x + 1; }\nint main() { return f(3); }\n"

(* --- framing + the warm path ----------------------------------------- *)

let test_warm_analyze () =
  let responses =
    run_session
      [ analyze ~id:1 "p" good_source; "";
        analyze ~id:2 "p" good_source; "";
        req [ ("id", Json.Num 3.); ("op", Json.Str "shutdown") ] ]
  in
  match responses with
  | [ cold; warm; bye ] ->
    Alcotest.(check bool) "cold ok" true (ok_of cold);
    Alcotest.(check bool) "warm ok" true (ok_of warm);
    Alcotest.(check bool) "ids echoed in order" true
      (id_of cold = Json.Num 1. && id_of warm = Json.Num 2.
      && id_of bye = Json.Num 3.);
    Alcotest.(check bool) "cold pass is not a program hit" false
      (bool_field "program_hit" cold);
    Alcotest.(check bool) "warm pass is a program hit" true
      (bool_field "program_hit" warm);
    Alcotest.(check bool) "cold pass computed something" true
      (num_field "fn_misses" cold > 0.);
    Alcotest.(check (float 0.)) "warm pass recomputed nothing" 0.
      (num_field "fn_misses" warm);
    Alcotest.(check bool) "warm scores bit-identical to cold" true
      (Json.member "scores" cold = Json.member "scores" warm);
    Alcotest.(check bool) "shutdown acknowledged" true
      (bool_field "stopping" bye)
  | rs -> Alcotest.failf "expected 3 responses, got %d" (List.length rs)

(* --- fault isolation -------------------------------------------------- *)

let test_error_isolation () =
  let responses =
    run_session
      [ analyze ~id:1 "good" good_source;
        analyze ~id:2 "bad" "int broken( { return 0; }";
        analyze ~id:3 "also_good" good_source ]
  in
  match responses with
  | [ a; b; c ] ->
    Alcotest.(check bool) "healthy neighbour before" true (ok_of a);
    Alcotest.(check bool) "broken program answered with an error" false
      (ok_of b);
    Alcotest.(check bool) "healthy neighbour after" true (ok_of c);
    let err =
      match Json.member "error" b with
      | Some e -> e
      | None -> Alcotest.fail "error response carries an error object"
    in
    Alcotest.(check string) "fault stage is the request boundary"
      "experiment" (str_field "stage" err);
    Alcotest.(check string) "fault subject is the program name" "bad"
      (str_field "subject" err);
    Alcotest.(check bool) "the parser's own exception is preserved" true
      (let exn = str_field "exn" err in
       String.length exn > 0)
  | rs -> Alcotest.failf "expected 3 responses, got %d" (List.length rs)

let test_malformed_lines () =
  let responses =
    run_session
      [ "this is not json";
        req [ ("op", Json.Str "frobnicate") ];
        req [ ("id", Json.Num 9.); ("name", Json.Str "no_op_field") ];
        analyze ~id:4 "p" good_source ]
  in
  match responses with
  | [ a; b; c; d ] ->
    Alcotest.(check bool) "unparseable line answered, id null" true
      ((not (ok_of a)) && id_of a = Json.Null);
    Alcotest.(check bool) "unknown op answered, id null" true
      ((not (ok_of b)) && id_of b = Json.Null);
    Alcotest.(check bool) "missing op answered with its id" true
      ((not (ok_of c)) && id_of c = Json.Num 9.);
    Alcotest.(check bool) "the session survives all three" true (ok_of d)
  | rs -> Alcotest.failf "expected 4 responses, got %d" (List.length rs)

(* --- control verbs ---------------------------------------------------- *)

let test_scores_invalidate_stats () =
  let responses =
    run_session
      [ analyze ~id:1 "p" good_source; "";
        req
          [ ("id", Json.Num 2.); ("op", Json.Str "scores");
            ("name", Json.Str "p") ];
        req
          [ ("id", Json.Num 3.); ("op", Json.Str "invalidate");
            ("name", Json.Str "p") ];
        req
          [ ("id", Json.Num 4.); ("op", Json.Str "scores");
            ("name", Json.Str "p") ];
        req [ ("id", Json.Num 5.); ("op", Json.Str "stats") ]; "";
        analyze ~id:6 "p" good_source ]
  in
  match responses with
  | [ a; sc; inv; sc2; st; again ] ->
    Alcotest.(check bool) "scores replays the analysis scores" true
      (ok_of sc && Json.member "scores" sc = Json.member "scores" a);
    Alcotest.(check bool) "invalidate reports dropped entries" true
      (ok_of inv && num_field "dropped" inv > 0.);
    Alcotest.(check bool) "scores after invalidate is an error" false
      (ok_of sc2);
    Alcotest.(check bool) "stats exposes the store counters" true
      (ok_of st
      && num_field "hits" st >= 0.
      && num_field "misses" st > 0.
      && num_field "budget" st > 0.
      && num_field "jobs" st = 1.);
    Alcotest.(check bool) "stats re-reads the git rev per call" true
      (String.length (str_field "git_rev" st) > 0);
    (* Invalidation is name-scoped: the compiled program is dropped but
       the content-addressed fn entries survive, so the re-analysis
       recomputes nothing. *)
    Alcotest.(check bool) "re-analysis after invalidate reparses" false
      (bool_field "program_hit" again);
    Alcotest.(check (float 0.)) "but re-solves nothing" 0.
      (num_field "fn_misses" again)
  | rs -> Alcotest.failf "expected 6 responses, got %d" (List.length rs)

let test_resize_and_parallel_batch () =
  let responses =
    run_session
      [ req
          [ ("id", Json.Num 1.); ("op", Json.Str "resize");
            ("jobs", Json.Num 3.) ]; "";
        (* Adjacent analyzes in one batch fan out through the pool. *)
        analyze ~id:2 "a" good_source;
        analyze ~id:3 "b" "int main() { return 42; }\n";
        analyze ~id:4 "c" good_source; "";
        req [ ("id", Json.Num 5.); ("op", Json.Str "stats") ]; "";
        req
          [ ("id", Json.Num 6.); ("op", Json.Str "resize");
            ("jobs", Json.Num 1.) ] ]
  in
  match responses with
  | [ r1; a; b; c; st; r2 ] ->
    Alcotest.(check (float 0.)) "resize echoes the new size" 3.
      (num_field "jobs" r1);
    Alcotest.(check bool) "all three analyzes answered in order" true
      (ok_of a && ok_of b && ok_of c
      && id_of a = Json.Num 2.
      && id_of b = Json.Num 3.
      && id_of c = Json.Num 4.);
    (* "a" and "c" have identical source under different names: the
       second one to run gets every function from the store. *)
    Alcotest.(check bool) "content sharing across names" true
      (num_field "fn_misses" a = 0. || num_field "fn_misses" c = 0.);
    Alcotest.(check (float 0.)) "stats sees the resized pool" 3.
      (num_field "jobs" st);
    Alcotest.(check (float 0.)) "resized back down" 1.
      (num_field "jobs" r2)
  | rs -> Alcotest.failf "expected 6 responses, got %d" (List.length rs)

let test_shutdown_rejects_rest_of_batch () =
  let responses =
    run_session
      [ analyze ~id:1 "p" good_source;
        req [ ("id", Json.Num 2.); ("op", Json.Str "shutdown") ];
        analyze ~id:3 "q" good_source; "";
        (* A whole further batch behind the shutdown: never read. *)
        analyze ~id:4 "r" good_source ]
  in
  match responses with
  | [ a; bye; rejected ] ->
    Alcotest.(check bool) "request ahead of shutdown served" true (ok_of a);
    Alcotest.(check bool) "shutdown acknowledged" true
      (bool_field "stopping" bye);
    Alcotest.(check bool) "request behind shutdown rejected" false
      (ok_of rejected);
    Alcotest.(check bool) "rejected with its own id" true
      (id_of rejected = Json.Num 3.)
  | rs -> Alcotest.failf "expected 3 responses, got %d" (List.length rs)

(* --- typed error payloads: deadline + overload ------------------------ *)

let test_deadline_marker () =
  Incr.clear ();
  Incr.reset_stats ();
  Fun.protect
    ~finally:(fun () ->
      Driver.Fault.reset ();
      Incr.clear ())
    (fun () ->
      (* an unmeetable per-request deadline: the analysis must come back
         as a typed fault carrying the deadline marker, not hang or die *)
      let responses =
        Serve.handle_batch ~deadline_s:1e-9 (ref false)
          [ analyze ~id:7 "slowpoke" good_source ]
      in
      match List.map Json.parse_exn responses with
      | [ r ] ->
        Alcotest.(check bool) "deadline response is an error" false
          (ok_of r);
        Alcotest.(check bool) "it keeps its request id" true
          (id_of r = Json.Num 7.);
        Alcotest.(check bool) "it carries the deadline marker" true
          (bool_field "deadline_exceeded" r);
        Alcotest.(check bool) "the fault exn names the timeout" true
          (let e =
             match Option.bind (Json.member "error" r) (Json.member "exn") with
             | Some (Json.Str s) -> s
             | _ -> Alcotest.fail "fault payload missing error.exn"
           in
           let has_sub s sub =
             let n = String.length s and m = String.length sub in
             let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
             m = 0 || go 0
           in
           has_sub e "Deadline")
      | rs -> Alcotest.failf "expected 1 response, got %d" (List.length rs))

let test_overload_shed_shape () =
  let responses =
    Serve.shed_responses ~queue_limit:4
      [ analyze ~id:9 "shed-me" good_source ]
  in
  match List.map Json.parse_exn responses with
  | [ r ] ->
    Alcotest.(check bool) "shed response is an error" false (ok_of r);
    Alcotest.(check bool) "it keeps its request id" true
      (id_of r = Json.Num 9.);
    Alcotest.(check bool) "it carries the overloaded marker" true
      (bool_field "overloaded" r)
  | rs -> Alcotest.failf "expected 1 response, got %d" (List.length rs)

(* --- telemetry: metrics verb, slow log, gauge re-publish -------------- *)

module Hist = Obs.Hist
module Probe = Obs.Probe
module Reqtrace = Driver.Reqtrace

(* Telemetry state is process-global; every telemetry test starts from
   a clean plane and restores it, whatever happens. *)
let with_probes (f : unit -> unit) () =
  let clean () =
    Reqtrace.set_slow_ms None;
    Reqtrace.set_slow_sink None;
    Reqtrace.reset_slow ();
    Probe.set_enabled false;
    Probe.reset ();
    Hist.reset ()
  in
  clean ();
  Probe.set_enabled true;
  Fun.protect ~finally:clean f

let member_obj name j =
  match Json.member name j with
  | Some o -> o
  | None -> Alcotest.failf "response missing object field %S" name

let test_metrics_verb () =
  let responses =
    run_session
      [ analyze ~id:1 "metrics_prog" good_source; "";
        req [ ("id", Json.Num 2.); ("op", Json.Str "metrics") ]; "";
        req [ ("id", Json.Num 3.); ("op", Json.Str "shutdown") ] ]
  in
  match responses with
  | [ _; m; _ ] ->
    Alcotest.(check bool) "metrics response is ok" true (ok_of m);
    Alcotest.(check (float 0.0)) "schema version" 1.0 (num_field "schema" m);
    let hists = member_obj "hists" m in
    let request_hist = member_obj "serve.request.ns" hists in
    Alcotest.(check (float 0.0))
      "serve.request.ns counts the one completed request" 1.0
      (num_field "count" request_hist);
    Alcotest.(check bool) "quantiles are published" true
      (Json.member "p99" request_hist <> None);
    Alcotest.(check bool) "the analyze latency histogram is there" true
      (Json.member "incr.analyze.ns" hists <> None);
    let bytes = member_obj "incr.bytes" (member_obj "gauges" m) in
    Alcotest.(check bool) "store gauge is positive" true
      (num_field "value" bytes > 0.0);
    Alcotest.(check (float 0.0)) "unsharded gauge is shard -1" (-1.0)
      (num_field "shard" bytes);
    Alcotest.(check bool) "cache counters are published" true
      (Json.member "incr.miss" (member_obj "counters" m) <> None);
    Alcotest.(check (float 0.0)) "no workers in embedded mode" 0.0
      (num_field "workers" m)
  | rs -> Alcotest.failf "expected 3 responses, got %d" (List.length rs)

let test_slow_log () =
  let sink = Filename.temp_file "serve_slow" ".ndjson" in
  Fun.protect
    ~finally:(fun () -> Sys.remove sink)
    (fun () ->
      Reqtrace.set_slow_ms (Some 0.0);   (* every request is "slow" *)
      Reqtrace.set_slow_sink (Some sink);
      let responses =
        run_session
          [ analyze ~id:1 "slow_prog" good_source; "";
            req [ ("id", Json.Num 2.); ("op", Json.Str "shutdown") ] ]
      in
      Alcotest.(check int) "both requests answered" 2
        (List.length responses);
      Alcotest.(check bool) "the slow log caught the analyze" true
        (Reqtrace.slow_count () >= 1);
      (match Reqtrace.slow_entries () with
      | e :: _ ->
        Alcotest.(check string) "oldest entry is the analyze" "analyze"
          e.Reqtrace.se_op;
        Alcotest.(check string) "it names the program" "slow_prog"
          e.Reqtrace.se_name;
        Alcotest.(check bool) "it echoes the request id" true
          (e.Reqtrace.se_id = Json.Num 1.);
        (match e.Reqtrace.se_tree with
        | Some t ->
          Alcotest.(check string) "the span tree is rooted at request"
            "request" t.Reqtrace.t_label
        | None -> Alcotest.fail "slow entry lost its span tree")
      | [] -> Alcotest.fail "slow ring is empty");
      (* the NDJSON sink carries the same entries, one object a line *)
      let ic = open_in sink in
      let rec read acc =
        match input_line ic with
        | l -> read (Json.parse_exn l :: acc)
        | exception End_of_file ->
          close_in ic;
          List.rev acc
      in
      let lines = read [] in
      Alcotest.(check int) "sink line count matches the ring"
        (Reqtrace.slow_count ()) (List.length lines);
      let first = List.hd lines in
      Alcotest.(check string) "sink entries carry the op" "analyze"
        (str_field "op" first);
      Alcotest.(check bool) "sink entries carry the span tree" true
        (match Json.member "tree" first with
        | Some (Json.Obj _) -> true
        | _ -> false))

(* The pinned regression for stale store gauges: a probe-table reset
   mid-life (exactly what the sharded daemon's per-batch housekeeping
   used to do) dropped [incr.bytes] until the next cache write, so
   [metrics] under-reported the store. The serve loop now re-publishes
   after every batch: the first post-reset snapshot may miss the gauge,
   the next one must have it back at full value. *)
let test_gauge_republish_after_reset () =
  Incr.clear ();
  Incr.reset_stats ();
  Parallel.set_jobs 1;
  ignore (Incr.analyze ~name:"regauge" good_source);
  let before =
    match Probe.gauge "incr.bytes" with
    | Some v when v > 0.0 -> v
    | _ -> Alcotest.fail "analyze did not publish the store gauge"
  in
  Probe.reset ();
  Alcotest.(check bool) "the reset dropped the gauge" true
    (Probe.gauge "incr.bytes" = None);
  let metrics id = req [ ("id", Json.Num (float_of_int id)); ("op", Json.Str "metrics") ] in
  let responses =
    run_session_dirty
      [ metrics 1; ""; metrics 2; "";
        req [ ("id", Json.Num 3.); ("op", Json.Str "shutdown") ] ]
  in
  match responses with
  | [ m1; m2; _ ] ->
    let bytes m =
      Option.bind (Json.member "gauges" m) (Json.member "incr.bytes")
    in
    Alcotest.(check bool)
      "same-batch snapshot still misses the gauge (reset precedes it)"
      true
      (bytes m1 = None);
    (match bytes m2 with
    | Some g ->
      Alcotest.(check (float 0.0))
        "next batch sees the re-published gauge at full value" before
        (num_field "value" g)
    | None ->
      Alcotest.fail
        "gauge still missing one batch later: the per-batch re-publish \
         is gone")
  | rs -> Alcotest.failf "expected 3 responses, got %d" (List.length rs)

let suite =
  [ Alcotest.test_case "warm analyze: program hit, identical scores"
      `Quick test_warm_analyze;
    Alcotest.test_case "a broken program only fails its own request"
      `Quick test_error_isolation;
    Alcotest.test_case "malformed request lines don't kill the session"
      `Quick test_malformed_lines;
    Alcotest.test_case "scores / invalidate / stats round-trip" `Quick
      test_scores_invalidate_stats;
    Alcotest.test_case "resize between batches + parallel fan-out" `Quick
      test_resize_and_parallel_batch;
    Alcotest.test_case "shutdown rejects the rest of the batch" `Quick
      test_shutdown_rejects_rest_of_batch;
    Alcotest.test_case "an unmeetable deadline is a typed fault" `Quick
      test_deadline_marker;
    Alcotest.test_case "a shed request is a typed overload error" `Quick
      test_overload_shed_shape;
    Alcotest.test_case "metrics verb: one JSON snapshot of the plane"
      `Quick (with_probes test_metrics_verb);
    Alcotest.test_case "slow log: ring + NDJSON sink carry span trees"
      `Quick (with_probes test_slow_log);
    Alcotest.test_case "store gauge survives a probe reset (regression)"
      `Quick (with_probes test_gauge_republish_after_reset) ]
