(** Structural (CFG-only) frequency estimation — the executable-level
    baseline the paper contrasts its AST-based techniques with: loops are
    recovered from back edges via dominators, and each block's frequency
    is the standard count raised to its natural-loop nesting depth. *)

module Cfg = Cfg_ir.Cfg
module Dominance = Cfg_ir.Dominance

(** Frequency = iterations^depth per block. *)
val block_freqs : Cfg.fn -> float array

(** As {!block_freqs}, but loop headers count one extra test execution
    per entry, matching the AST model's treatment of loop tests. *)
val block_freqs_refined : Cfg.fn -> float array
