(* Fixed-width text tables for the experiment reports. *)

type align = Left | Right

(* Render [rows] under [headers]; column widths fit the content. *)
let render ?(aligns : align list = []) (headers : string list)
    (rows : string list list) : string =
  let ncols = List.length headers in
  let align i =
    match List.nth_opt aligns i with Some a -> a | None -> Right
  in
  let widths = Array.of_list (List.map String.length headers) in
  List.iter
    (fun row ->
      List.iteri
        (fun i cell ->
          if i < ncols then widths.(i) <- max widths.(i) (String.length cell))
        row)
    rows;
  let pad i cell =
    let w = widths.(i) in
    let n = String.length cell in
    if n >= w then cell
    else
      match align i with
      | Left -> cell ^ String.make (w - n) ' '
      | Right -> String.make (w - n) ' ' ^ cell
  in
  let line cells =
    String.concat "  " (List.mapi pad cells)
  in
  let rule =
    String.concat "  "
      (Array.to_list (Array.map (fun w -> String.make w '-') widths))
  in
  let buf = Buffer.create 256 in
  Buffer.add_string buf (line headers);
  Buffer.add_char buf '\n';
  Buffer.add_string buf rule;
  Buffer.add_char buf '\n';
  List.iter
    (fun row ->
      Buffer.add_string buf (line row);
      Buffer.add_char buf '\n')
    rows;
  Buffer.contents buf

(* Non-finite values (the empty-series mean, a degraded score) render
   as an explicit marker rather than "nan%". *)
let pct (v : float) : string =
  if Float.is_finite v then Printf.sprintf "%.1f%%" (100.0 *. v) else "—"

let f2 (v : float) : string =
  if Float.is_finite v then Printf.sprintf "%.2f" v else "—"
