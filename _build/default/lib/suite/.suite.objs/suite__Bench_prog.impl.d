lib/suite/bench_prog.ml: List String
