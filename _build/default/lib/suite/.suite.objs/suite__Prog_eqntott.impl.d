lib/suite/prog_eqntott.ml: Bench_prog String
