(* Shared, memoized experiment context: each suite program compiled once
   and profiled once per input. Every experiment — and the bench harness —
   draws from this cache, so running all of them costs one pass over the
   suite no matter how many consumers ask.

   The cache is content-keyed (program name + digest of source and run
   set): re-registering a program with different source or inputs
   recomputes instead of serving stale data, and entries surviving a
   [clear] race are still correct by construction.

   Fault tolerance: a cell holds a *result* — [Ok prog_data] or the
   [Fault.t] that took the program down. In the default (degrade) mode a
   failing program publishes its fault instead of poisoning the key:
   waiters blocked on the in-flight marker receive the fault rather than
   recomputing, [all] serves the healthy subset, and the experiments
   render a degraded row. Under [--strict] the computing loader re-raises
   with the original backtrace and *abandons* the key, so a later retry
   (e.g. after a transient, count-limited injection) recomputes from
   scratch instead of hitting a stale failure.

   Concurrency: the table is a mutex-protected memo with in-flight
   markers. A loader that finds no entry claims the key, computes
   outside the lock, publishes, and broadcasts; concurrent loaders of
   the same key block on the condition instead of duplicating the
   compile. [warm] fans the per-program pipeline stages (compile, then
   every profiling run) across the [Parallel] pool and merges in
   registry order, which is what makes [all] deterministic regardless
   of the jobs setting. *)

module Pipeline = Core.Pipeline
module Profile = Cinterp.Profile
module Eval = Cinterp.Eval

type prog_data = {
  bench : Suite.Bench_prog.t;
  compiled : Pipeline.compiled;
  profiles : Profile.t list;
}

type entry = (prog_data, Fault.t) result

(* Wall-clock ceiling per profiling run. Healthy suite runs finish in
   well under a second; the ceiling only exists so a runaway interpreter
   (a bug, or injected chaos) surfaces as a partial-profile fault
   instead of hanging the suite. *)
let run_deadline_s = 300.0

(* The fuel budget the ["profile.fuel"] injection point shrinks runs to:
   small enough that every suite program exhausts it, so arming the
   point deterministically exercises the partial-profile path. *)
let injected_fuel = 10

(* ------------------------------------------------------------------ *)
(* Content keys. *)

let key (bench : Suite.Bench_prog.t) : string =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf bench.Suite.Bench_prog.source;
  List.iter
    (fun (r : Suite.Bench_prog.run) ->
      Buffer.add_char buf '\x00';
      List.iter
        (fun a ->
          Buffer.add_string buf a;
          Buffer.add_char buf '\x01')
        r.Suite.Bench_prog.r_argv;
      Buffer.add_char buf '\x00';
      Buffer.add_string buf r.Suite.Bench_prog.r_input)
    bench.Suite.Bench_prog.runs;
  bench.Suite.Bench_prog.name ^ ":"
  ^ Digest.to_hex (Digest.string (Buffer.contents buf))

(* ------------------------------------------------------------------ *)
(* The memo table. *)

type cell =
  | Computing  (* claimed by a loader; wait on [cell_changed] *)
  | Done of entry

let m = Mutex.create ()
let cell_changed = Condition.create ()
let cache : (string, cell) Hashtbl.t = Hashtbl.create 16

let clear () =
  Mutex.lock m;
  Hashtbl.reset cache;
  Condition.broadcast cell_changed;
  Mutex.unlock m

let publish k e =
  Mutex.lock m;
  Hashtbl.replace cache k (Done e);
  Condition.broadcast cell_changed;
  Mutex.unlock m

let abandon k =
  Mutex.lock m;
  (match Hashtbl.find_opt cache k with
  | Some Computing -> Hashtbl.remove cache k
  | _ -> ());
  Condition.broadcast cell_changed;
  Mutex.unlock m

(* ------------------------------------------------------------------ *)
(* The per-program pipeline stages. *)

let drop_recovery = "program dropped from suite (degraded row)"

let compile_stage (bench : Suite.Bench_prog.t) : Pipeline.compiled =
  let name = bench.Suite.Bench_prog.name in
  Obs.Inject.fire "compile" ~key:name;
  let c = Pipeline.compile ~name bench.Suite.Bench_prog.source in
  (* Lower to closures as part of the (parallel) compile stage, so the
     one-time cost is off the profiling path and spread across the
     domain pool during warm-up. *)
  if !Pipeline.default_backend = Pipeline.Compiled then
    ignore (Pipeline.closure_exe c);
  c

let compile_entry (bench : Suite.Bench_prog.t) :
    (Pipeline.compiled, Fault.t) result =
  Fault.capture ~stage:Fault.Compile
    ~subject:bench.Suite.Bench_prog.name ~recovery:drop_recovery (fun () ->
      compile_stage bench)

(* One (program, run) interpretation. Exhausting the fuel or wall-clock
   budget is a *recoverable* fault: the partial profile is kept (both
   back ends decrement fuel identically, so partial profiles stay
   bit-identical across back ends) and the program stays healthy. *)
let profile_stage (compiled : Pipeline.compiled) (run_index : int)
    (r : Suite.Bench_prog.run) : Profile.t =
  let name = compiled.Pipeline.name in
  Obs.Inject.fire "profile" ~key:name;
  let fuel =
    if Obs.Inject.should_fire "profile.fuel" ~key:name then
      Some injected_fuel
    else None
  in
  let run =
    { Pipeline.argv = r.Suite.Bench_prog.r_argv;
      input = r.Suite.Bench_prog.r_input }
  in
  match Pipeline.run_once ?fuel ~deadline_s:run_deadline_s compiled run with
  | o -> o.Eval.profile
  | exception Eval.Budget_exhausted (stop, outcome) ->
    Obs.Probe.count "context.partial_profile";
    Fault.record
      { Fault.f_stage = Fault.Profile; f_subject = name;
        f_detail =
          Printf.sprintf "run %d: %s budget exhausted" run_index
            (Eval.budget_stop_to_string stop);
        f_exn = ""; f_backtrace = "";
        f_recovery = "kept partial profile" };
    outcome.Eval.profile

let profiles_entry (bench : Suite.Bench_prog.t)
    (compiled : Pipeline.compiled) : (Profile.t list, Fault.t) result =
  Fault.capture ~stage:Fault.Profile
    ~subject:bench.Suite.Bench_prog.name ~recovery:drop_recovery (fun () ->
      List.mapi
        (fun i r -> profile_stage compiled i r)
        bench.Suite.Bench_prog.runs)

let compute (bench : Suite.Bench_prog.t) : entry =
  match compile_entry bench with
  | Error f -> Error f
  | Ok compiled -> (
    match profiles_entry bench compiled with
    | Error f -> Error f
    | Ok profiles -> Ok { bench; compiled; profiles })

let load (bench : Suite.Bench_prog.t) : entry =
  let k = key bench in
  Mutex.lock m;
  let rec get () =
    match Hashtbl.find_opt cache k with
    | Some (Done e) ->
      Mutex.unlock m;
      Obs.Probe.count "context.cache_hit";
      e
    | Some Computing ->
      Obs.Probe.count "context.cache_wait";
      Condition.wait cell_changed m;
      get ()
    | None ->
      Hashtbl.replace cache k Computing;
      Mutex.unlock m;
      Obs.Probe.count "context.cache_miss";
      (match compute bench with
      | e -> publish k e; e
      | exception e ->
        (* strict mode (or a bug below the captures): leave the key
           retryable, never poisoned *)
        let bt = Printexc.get_raw_backtrace () in
        abandon k;
        Printexc.raise_with_backtrace e bt)
  in
  get ()

(* ------------------------------------------------------------------ *)
(* Parallel warm-up: claim every missing program, fan the compile stage
   out per program, then the profile stage per (program, run) pair, and
   publish assembled results. Pure fan-out/merge: stage outputs are
   indexed by input position, never by completion order. Worker-level
   task deaths (the ["worker"] injection point, or anything thrown
   outside the stage captures) degrade the one program they belong to;
   in strict mode [Fault.absorb] re-raises instead and every claimed key
   is abandoned. *)

let absorb_slot ~(subject : string) ?detail
    (slot : (('a, Fault.t) result, exn * Printexc.raw_backtrace) result) :
    ('a, Fault.t) result =
  match slot with
  | Ok entry -> entry
  | Error (e, bt) ->
    Error
      (Fault.absorb ~stage:Fault.Worker ~subject ?detail
         ~recovery:drop_recovery e bt)

let warm () : unit =
  Obs.Probe.with_span "context.warm" @@ fun () ->
  Mutex.lock m;
  let missing =
    List.filter
      (fun b ->
        let k = key b in
        match Hashtbl.find_opt cache k with
        | Some _ -> false
        | None ->
          Hashtbl.replace cache k Computing;
          Obs.Probe.count "context.cache_miss";
          true)
      Suite.Registry.all
  in
  Mutex.unlock m;
  if missing <> [] then begin
    match
      let compiled_entries =
        List.map2
          (fun (b : Suite.Bench_prog.t) slot ->
            absorb_slot ~subject:b.Suite.Bench_prog.name slot)
          missing
          (Parallel.map_results compile_entry missing)
      in
      (* Fan the profile stage out per (program, run) pair of the
         healthy compiles. *)
      let flat_runs =
        List.concat
          (List.map2
             (fun (b : Suite.Bench_prog.t) ce ->
               match ce with
               | Ok c ->
                 List.mapi (fun i r -> (b, c, i, r)) b.Suite.Bench_prog.runs
               | Error _ -> [])
             missing compiled_entries)
      in
      let flat_profiles =
        List.map2
          (fun ((b : Suite.Bench_prog.t), _, i, _) slot ->
            absorb_slot ~subject:b.Suite.Bench_prog.name
              ~detail:(Printf.sprintf "run %d" i) slot)
          flat_runs
          (Parallel.map_results
             (fun (b, c, i, r) ->
               Fault.capture ~stage:Fault.Profile
                 ~subject:b.Suite.Bench_prog.name
                 ~detail:(Printf.sprintf "run %d" i)
                 ~recovery:drop_recovery (fun () -> profile_stage c i r))
             flat_runs)
      in
      (* Reassemble the flat profile list program by program, in run
         order, and publish each entry. A program with any faulted run
         degrades to its first (lowest-index) fault. *)
      let rec split n = function
        | rest when n = 0 -> ([], rest)
        | p :: rest ->
          let taken, rest = split (n - 1) rest in
          (p :: taken, rest)
        | [] -> invalid_arg "Context.warm: profile count mismatch"
      in
      let leftover =
        List.fold_left2
          (fun profiles (b : Suite.Bench_prog.t) ce ->
            match ce with
            | Error f ->
              publish (key b) (Error f);
              profiles
            | Ok c ->
              let mine, rest =
                split (List.length b.Suite.Bench_prog.runs) profiles
              in
              let entry =
                match
                  List.find_map
                    (function Error f -> Some f | Ok _ -> None)
                    mine
                with
                | Some f -> Error f
                | None ->
                  Ok
                    { bench = b; compiled = c;
                      profiles =
                        List.map
                          (function Ok p -> p | Error _ -> assert false)
                          mine }
              in
              publish (key b) entry;
              rest)
          flat_profiles missing compiled_entries
      in
      assert (leftover = [])
    with
    | () -> ()
    | exception e ->
      let bt = Printexc.get_raw_backtrace () in
      List.iter (fun b -> abandon (key b)) missing;
      Printexc.raise_with_backtrace e bt
  end

let all_entries () : (Suite.Bench_prog.t * entry) list =
  warm ();
  List.map (fun b -> (b, load b)) Suite.Registry.all

let all () : prog_data list =
  List.filter_map
    (fun (_, e) -> match e with Ok d -> Some d | Error _ -> None)
    (all_entries ())

let degraded () : (string * Fault.t) list =
  List.filter_map
    (fun ((b : Suite.Bench_prog.t), e) ->
      match e with
      | Ok _ -> None
      | Error f -> Some (b.Suite.Bench_prog.name, f))
    (all_entries ())

let by_name (name : string) : prog_data =
  match Suite.Registry.find name with
  | Some bench -> (
    match load bench with
    | Ok d -> d
    | Error f -> raise (Fault.Degraded f))
  | None -> invalid_arg ("unknown suite program " ^ name)
