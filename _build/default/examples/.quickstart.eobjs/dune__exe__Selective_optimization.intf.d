examples/selective_optimization.mli:
