lib/cfront/lexer.ml: Buffer Char List Printf String Token
