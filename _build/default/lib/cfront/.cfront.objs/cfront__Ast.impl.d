lib/cfront/ast.ml: Ctypes List Option Token
