(* estimator — command-line driver for the static-estimator library.

   Subcommands:
     parse        parse and typecheck a C file, print the globals
     cfg          dump a function's CFG (text or dot)
     estimate     print intra-procedural block frequency estimates
     inter        print function invocation estimates
     callsites    print the global call-site ranking
     annotate     print the source with per-line frequency estimates
     run          interpret a C program (profiling; --save-profile FILE)
     score        score static estimates against a saved profile
     experiment   reproduce one of the paper's tables/figures/ablations
     record       run the full suite and write a typed run record (JSON)
     corpus       generate a seeded shaped corpus and score every estimator
     diff         compare a run record against the committed baseline
     serve        warm estimator daemon (newline-delimited JSON protocol)
     watch        live metrics dashboard over a running daemon
     suite        list the benchmark suite *)

module Pipeline = Core.Pipeline
module Cfg = Cfg_ir.Cfg
module Profile = Cinterp.Profile

open Cmdliner

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

let load path =
  let name = Filename.remove_extension (Filename.basename path) in
  Pipeline.compile ~name (read_file path)

(* ---- common arguments ---- *)

let file_arg =
  Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE.c"
         ~doc:"C source file (supported subset).")

let fn_arg =
  Arg.(value & opt (some string) None & info [ "f"; "function" ]
         ~docv:"NAME" ~doc:"Restrict output to one function.")

let jobs_arg =
  Arg.(value
       & opt int (Driver.Parallel.default_jobs ())
       & info [ "j"; "jobs" ] ~docv:"N"
           ~doc:"Number of analysis domains (1 = sequential; default: the \
                 recommended domain count). Results are identical at every \
                 setting.")

let trace_arg =
  Arg.(value & flag
       & info [ "trace" ]
           ~doc:"Print a tree of pipeline stage timings and solver/cache \
                 counters to stderr when the command finishes.")

let metrics_arg =
  Arg.(value & opt (some string) None
       & info [ "metrics-out" ] ~docv:"FILE"
           ~doc:"Write span timings and counters as JSON to $(docv) when \
                 the command finishes.")

(* Fault policy for the suite-driving commands: [--strict] fails fast
   with the original backtrace, [--chaos SEED] arms every registered
   injection point with the deterministic seeded hash. Applied as a
   setup term, like [backend_arg]. *)
let fault_arg =
  let set strict chaos =
    if strict then Driver.Fault.set_strict true;
    match chaos with
    | None -> ()
    | Some seed -> Driver.Fault.arm_chaos ~seed ()
  in
  Term.(
    const set
    $ Arg.(
        value & flag
        & info [ "strict" ]
            ~doc:"Fail fast on the first fault instead of degrading: the \
                  original exception is re-raised with its backtrace and \
                  the process exits non-zero.")
    $ Arg.(
        value
        & opt (some int) None
        & info [ "chaos" ] ~docv:"SEED"
            ~doc:"Arm every fault-injection point with a deterministic \
                  hash of $(docv): the same seed fails the same stages at \
                  any $(b,--jobs) setting. The run completes degraded \
                  (exit code 3) unless $(b,--strict) is also given."))

(* Completed runs report recorded faults on stderr and exit 3, so
   scripts can tell a degraded evaluation from a healthy one. *)
let finish_with_fault_status () =
  let s = Driver.Fault.summary () in
  if s <> "" then prerr_string s;
  let code = Driver.Fault.exit_code () in
  if code <> 0 then exit code

let backend_arg =
  let set b = Pipeline.default_backend := b in
  Term.(
    const set
    $ Arg.(
        value
        & opt
            (enum
               [ ("tree", Pipeline.Tree); ("compiled", Pipeline.Compiled) ])
            Pipeline.Compiled
        & info [ "interp-backend" ] ~docv:"BACKEND"
            ~doc:"Profiling interpreter back end: $(b,compiled) (closure\
                  -compiled, default) or $(b,tree) (reference AST walker). \
                  The two produce bit-identical profiles; only speed \
                  differs."))

(* Markov linear-system solver selection, applied as a setup term like
   [backend_arg]. Dense is the default: its results are bit-identical
   to the committed BASELINE.json; the sparse path agrees only to the
   iterative convergence tolerance (gate with [diff --solver-band]). *)
let solver_arg =
  let set m = Linalg.Linsolve.solver_mode := m in
  Term.(
    const set
    $ Arg.(
        value
        & opt
            (enum
               [ ("dense", Linalg.Linsolve.Dense);
                 ("sparse", Linalg.Linsolve.Sparse);
                 ("auto", Linalg.Linsolve.Auto) ])
            Linalg.Linsolve.Dense
        & info [ "solver" ] ~docv:"MODE"
            ~doc:"Markov linear-system solver: $(b,dense) (Gaussian \
                  elimination, bit-identical to the committed baseline; \
                  default), $(b,sparse) (CSR Gauss-Seidel with power-\
                  iteration and dense fallbacks), or $(b,auto) (sparse \
                  for systems of 128+ nodes)."))

let solver_mode_string () =
  Linalg.Linsolve.mode_to_string !Linalg.Linsolve.solver_mode

(* Route every intra estimate through the content-addressed incremental
   store (Driver.Incr). Scores are bit-identical with the flag on or
   off — the store keys by function content, solver mode and config
   fingerprint — which CI proves by diffing a --incr-cache record
   against the committed baseline. *)
let incr_arg =
  let set enabled = if enabled then Driver.Incr.install () in
  Term.(
    const set
    $ Arg.(
        value & flag
        & info [ "incr-cache" ]
            ~doc:"Serve per-function intra estimates from the \
                  content-addressed incremental store (the cache behind \
                  $(b,serve)). Results are bit-identical either way; \
                  repeated sweeps get cheaper."))

let mode_arg =
  Arg.(value & opt (enum [ ("loop", Pipeline.Iloop); ("smart", Pipeline.Ismart);
                           ("markov", Pipeline.Imarkov);
                           ("structural", Pipeline.Istructural) ])
         Pipeline.Ismart
       & info [ "m"; "mode" ] ~docv:"MODE"
           ~doc:"Estimator: loop, smart, markov, or structural.")

let inter_arg =
  Arg.(value
       & opt (enum [ ("call_site", Pipeline.Isimple Core.Inter_simple.Call_site);
                     ("direct", Pipeline.Isimple Core.Inter_simple.Direct);
                     ("all_rec", Pipeline.Isimple Core.Inter_simple.All_rec);
                     ("all_rec2", Pipeline.Isimple Core.Inter_simple.All_rec2);
                     ("markov", Pipeline.Imarkov_inter) ])
           Pipeline.Imarkov_inter
       & info [ "i"; "inter" ] ~docv:"KIND"
           ~doc:"Inter-procedural model: call_site, direct, all_rec, all_rec2, markov.")

let selected_fns c = function
  | None -> c.Pipeline.prog.Cfg.prog_fns
  | Some name -> (
    match Cfg.find_fn c.Pipeline.prog name with
    | Some fn -> [ fn ]
    | None -> failwith ("no such function: " ^ name))

(* ---- parse ---- *)

let cmd_parse =
  let run path =
    let c = load path in
    let tu = c.Pipeline.tc.Cfront.Typecheck.tunit in
    List.iter
      (function
        | Cfront.Ast.Gfun f ->
          Printf.printf "function %s : %s (%d params)\n" f.Cfront.Ast.f_name
            (Cfront.Ctypes.to_string f.Cfront.Ast.f_ret)
            (List.length f.Cfront.Ast.f_params)
        | Cfront.Ast.Gvar d ->
          Printf.printf "global   %s : %s\n" d.Cfront.Ast.d_name
            (Cfront.Ctypes.to_string d.Cfront.Ast.d_ty)
        | Cfront.Ast.Gfundecl d ->
          Printf.printf "proto    %s\n" d.Cfront.Ast.d_name)
      tu.Cfront.Ast.globals
  in
  Cmd.v (Cmd.info "parse" ~doc:"Parse and typecheck a C file")
    Term.(const run $ file_arg)

(* ---- cfg ---- *)

let cmd_cfg =
  let run path fn_name dot =
    let c = load path in
    List.iter
      (fun fn ->
        if dot then print_string (Cfg_ir.Dot.fn_to_dot fn)
        else begin
          Printf.printf "function %s (%d blocks, entry B%d)\n"
            fn.Cfg.fn_name (Cfg.n_blocks fn) fn.Cfg.fn_entry;
          Array.iter
            (fun (b : Cfg.block) ->
              let succs = Cfg.successors b.Cfg.b_term in
              Printf.printf "  B%d: %d instr(s) -> %s\n" b.Cfg.b_id
                (List.length b.Cfg.b_instrs)
                (if succs = [] then "return"
                 else String.concat ", "
                        (List.map (Printf.sprintf "B%d") succs)))
            fn.Cfg.fn_blocks
        end)
      (selected_fns c fn_name)
  in
  let dot =
    Arg.(value & flag & info [ "dot" ] ~doc:"Emit graphviz format.")
  in
  Cmd.v (Cmd.info "cfg" ~doc:"Dump control-flow graphs")
    Term.(const run $ file_arg $ fn_arg $ dot)

(* ---- estimate ---- *)

let cmd_estimate =
  let run () path fn_name mode =
    let c = load path in
    let intra = Pipeline.intra_provider c mode in
    List.iter
      (fun fn ->
        Printf.printf "%s (%s estimator, entry = 1):\n" fn.Cfg.fn_name
          (Pipeline.intra_kind_to_string mode);
        Array.iteri
          (fun i v -> Printf.printf "  B%-3d %8.3f\n" i v)
          (intra fn.Cfg.fn_name))
      (selected_fns c fn_name)
  in
  Cmd.v
    (Cmd.info "estimate" ~doc:"Intra-procedural block frequency estimates")
    Term.(const run $ solver_arg $ file_arg $ fn_arg $ mode_arg)

(* ---- inter ---- *)

let cmd_inter =
  let run () path kind =
    let c = load path in
    let intra = Pipeline.intra_provider c Pipeline.Ismart in
    let est = Pipeline.inter_estimate c ~intra kind in
    let names = c.Pipeline.graph.Cfg_ir.Callgraph.names in
    Printf.printf "function invocation estimates (%s):\n"
      (Pipeline.inter_kind_to_string kind);
    Array.iteri
      (fun i name -> Printf.printf "  %-24s %10.3f\n" name est.(i))
      names
  in
  Cmd.v (Cmd.info "inter" ~doc:"Function invocation estimates")
    Term.(const run $ solver_arg $ file_arg $ inter_arg)

(* ---- callsites ---- *)

let cmd_callsites =
  let run () path kind =
    let c = load path in
    let intra = Pipeline.intra_provider c Pipeline.Ismart in
    let est = Pipeline.callsite_estimate c ~intra kind in
    let sites = Cfg.direct_sites c.Pipeline.prog in
    let ranked =
      List.mapi (fun i cs -> (est.(i), cs)) sites
      |> List.sort (fun (a, _) (b, _) -> compare b a)
    in
    Printf.printf "call sites by estimated frequency (%s):\n"
      (Pipeline.inter_kind_to_string kind);
    List.iter
      (fun (v, cs) ->
        Printf.printf "  %10.3f  %s\n" v (Core.Callsite_rank.describe cs))
      ranked
  in
  Cmd.v (Cmd.info "callsites" ~doc:"Global call-site ranking")
    Term.(const run $ solver_arg $ file_arg $ inter_arg)

(* ---- run ---- *)

let cmd_run =
  let run () path args stdin_file show_profile save_profile =
    let c = load path in
    let input =
      match stdin_file with None -> "" | Some f -> read_file f
    in
    let o = Pipeline.run_once c { Pipeline.argv = args; input } in
    print_string o.Cinterp.Eval.stdout_text;
    Printf.eprintf "[exit %d, %.0f work units]\n" o.Cinterp.Eval.exit_code
      o.Cinterp.Eval.work;
    if show_profile then begin
      Printf.eprintf "function invocations:\n";
      List.iter
        (fun fn ->
          Printf.eprintf "  %-24s %10.0f\n" fn.Cfg.fn_name
            (Profile.invocations o.Cinterp.Eval.profile fn))
        c.Pipeline.prog.Cfg.prog_fns
    end;
    (match save_profile with
    | Some out ->
      let oc = open_out out in
      output_string oc (Profile.save o.Cinterp.Eval.profile);
      close_out oc;
      Printf.eprintf "[profile written to %s]\n" out
    | None -> ());
    exit o.Cinterp.Eval.exit_code
  in
  let args =
    Arg.(value & opt_all string [] & info [ "a"; "arg" ] ~docv:"ARG"
           ~doc:"Program argument (repeatable).")
  in
  let stdin_file =
    Arg.(value & opt (some file) None & info [ "stdin" ] ~docv:"FILE"
           ~doc:"File fed to the program as standard input.")
  in
  let show_profile =
    Arg.(value & flag & info [ "profile" ] ~doc:"Print invocation counts.")
  in
  let save_profile =
    Arg.(value & opt (some string) None & info [ "save-profile" ]
           ~docv:"FILE" ~doc:"Write the execution profile to FILE.")
  in
  Cmd.v (Cmd.info "run" ~doc:"Interpret a C program")
    Term.(const run $ backend_arg $ file_arg $ args $ stdin_file
          $ show_profile $ save_profile)

(* ---- score: compare a static estimate against a saved profile ---- *)

let cmd_score =
  let run path profile_file mode cutoff =
    let c = load path in
    let profile = Profile.load (read_file profile_file) in
    let estimate = Pipeline.intra_provider c mode in
    let intra_wm = Pipeline.intra_score c ~estimate profile ~cutoff in
    Printf.printf "intra weight-matching (%s, %.0f%% cutoff): %.1f%%\n"
      (Pipeline.intra_kind_to_string mode)
      (cutoff *. 100.0) (100.0 *. intra_wm);
    let smart = Pipeline.intra_provider c Pipeline.Ismart in
    let inter_est = Pipeline.inter_estimate c ~intra:smart Pipeline.Imarkov_inter in
    let inter_wm =
      Core.Weight_matching.score ~estimate:inter_est
        ~actual:(Pipeline.inter_actual c profile)
        ~cutoff:0.25
    in
    Printf.printf "function invocations (markov, 25%% cutoff): %.1f%%\n"
      (100.0 *. inter_wm);
    let miss =
      Core.Missrate.rate c.Pipeline.prog profile
        (Core.Missrate.smart_predictor c.Pipeline.prog)
    in
    Printf.printf "branch misprediction rate: %.1f%%\n" (100.0 *. miss)
  in
  let profile_file =
    Arg.(required & opt (some file) None & info [ "p"; "profile" ]
           ~docv:"FILE" ~doc:"Profile written by 'run --save-profile'.")
  in
  let cutoff =
    Arg.(value & opt float 0.05 & info [ "cutoff" ] ~docv:"FRACTION"
           ~doc:"Weight-matching quantile (default 0.05).")
  in
  Cmd.v
    (Cmd.info "score"
       ~doc:"Score static estimates against a saved profile")
    Term.(const run $ file_arg $ profile_file $ mode_arg $ cutoff)

(* ---- annotate: print the source with per-line frequency estimates ---- *)

let cmd_annotate =
  let run path mode =
    let src = read_file path in
    let c = load path in
    (* line -> estimated frequency of the hottest statement starting there,
       scaled by the containing function's estimated invocation count *)
    let line_freq : (int, float) Hashtbl.t = Hashtbl.create 256 in
    let note line v =
      let old = Option.value ~default:0.0 (Hashtbl.find_opt line_freq line) in
      if v > old then Hashtbl.replace line_freq line v
    in
    let intra = Pipeline.intra_provider c Pipeline.Ismart in
    let inter = Pipeline.inter_estimate c ~intra Pipeline.Imarkov_inter in
    let inv name =
      match Cfg_ir.Callgraph.node_of_name c.Pipeline.graph name with
      | Some i -> inter.(i)
      | None -> 0.0
    in
    List.iter
      (fun fn ->
        let fi = fn.Cfg.fn_info in
        let f = fi.Cfront.Typecheck.fi_def in
        let freqs =
          match mode with
          | Pipeline.Iloop ->
            Core.Ast_estimator.stmt_freqs c.Pipeline.tc f
              Core.Ast_estimator.Loop
          | _ ->
            Core.Ast_estimator.stmt_freqs c.Pipeline.tc f
              Core.Ast_estimator.Smart
        in
        let scale = inv fn.Cfg.fn_name in
        Cfront.Ast.iter_stmt f.Cfront.Ast.f_body
          ~on_stmt:(fun s ->
            match Hashtbl.find_opt freqs s.Cfront.Ast.sid with
            | Some v -> note s.Cfront.Ast.spos.Cfront.Token.line (v *. scale)
            | None -> ())
          ~on_expr:(fun _ -> ()))
      c.Pipeline.prog.Cfg.prog_fns;
    List.iteri
      (fun i line ->
        let lineno = i + 1 in
        match Hashtbl.find_opt line_freq lineno with
        | Some v -> Printf.printf "%10.1f | %s\n" v line
        | None -> Printf.printf "           | %s\n" line)
      (String.split_on_char '\n' src)
  in
  Cmd.v
    (Cmd.info "annotate"
       ~doc:"Print the source annotated with estimated execution frequencies")
    Term.(const run $ file_arg $ mode_arg)

(* ---- experiment ---- *)

let cmd_experiment =
  let run jobs () () () () trace metrics_out id =
    Driver.Parallel.set_jobs jobs;
    Driver.Trace.with_reporting ~trace ~metrics_out (fun () ->
        match id with
        | None ->
          Printf.printf "available experiments:\n";
          List.iter
            (fun (i, title, _) -> Printf.printf "  %-8s %s\n" i title)
            Driver.Experiments.all
        | Some "all" -> print_string (Driver.Experiments.run_all ())
        | Some id -> (
          match Driver.Experiments.find id with
          | Some f -> print_string (f ())
          | None -> failwith ("unknown experiment " ^ id)));
    finish_with_fault_status ()
  in
  let id =
    Arg.(value & pos 0 (some string) None & info [] ~docv:"ID"
           ~doc:"Experiment id (table1, fig2, ... or 'all').")
  in
  Cmd.v
    (Cmd.info "experiment" ~doc:"Reproduce one of the paper's tables/figures")
    Term.(const run $ jobs_arg $ backend_arg $ fault_arg $ solver_arg
          $ incr_arg $ trace_arg $ metrics_arg $ id)

(* ---- record: run the suite, persist the typed score records ---- *)

let cmd_record =
  let run jobs () () () () out =
    Driver.Parallel.set_jobs jobs;
    Driver.Score.reset ();
    Driver.Trace.enable ();
    (* The record wants the scores and timings, not the rendered text. *)
    let (_ : string) =
      Driver.Trace.with_span "run" Driver.Experiments.run_all
    in
    let meta =
      [ ("jobs", string_of_int jobs);
        ("chaos_seed",
         match Obs.Inject.chaos_seed () with
         | Some s -> string_of_int s
         | None -> "none");
        ("backend",
         match !Pipeline.default_backend with
         | Pipeline.Tree -> "tree"
         | Pipeline.Compiled -> "compiled");
        ("solver", solver_mode_string ()) ]
    in
    let record = Driver.Run_record.collect ~meta () in
    Driver.Run_record.write_file out record;
    Printf.eprintf "[run record: %d scores, %d degraded -> %s]\n"
      (List.length record.Driver.Run_record.r_scores)
      (List.length record.Driver.Run_record.r_degraded)
      out;
    finish_with_fault_status ()
  in
  let out =
    Arg.(value & opt string "run_record.json" & info [ "o"; "out" ]
           ~docv:"FILE" ~doc:"Where to write the run record.")
  in
  Cmd.v
    (Cmd.info "record"
       ~doc:"Run the full experiment suite and write a typed run record \
             (scores, environment, faults, timings) as JSON")
    Term.(const run $ jobs_arg $ backend_arg $ fault_arg $ solver_arg
          $ incr_arg $ out)

(* ---- corpus: seeded shaped-program generation + estimator sweep ---- *)

let cmd_corpus =
  let run jobs () () () seed per_class size classes_opt out =
    Driver.Parallel.set_jobs jobs;
    Driver.Score.reset ();
    let classes =
      match classes_opt with
      | None -> Corpus.Shape.all_classes
      | Some s ->
        List.map
          (fun name ->
            match Corpus.Shape.class_of_string (String.trim name) with
            | Some c -> c
            | None -> failwith ("unknown workload class " ^ name))
          (String.split_on_char ',' s)
    in
    let spec =
      { Driver.Corpus_eval.c_seed = seed; c_per_class = per_class;
        c_size = size; c_classes = classes }
    in
    let r = Driver.Corpus_eval.evaluate spec in
    print_string r.Driver.Corpus_eval.o_rendered;
    (* The record meta deliberately excludes the jobs setting: records
       from the same spec are bit-identical at any --jobs value, and a
       meta difference would defeat exactly that comparison. *)
    let meta =
      [ ("corpus_seed", string_of_int seed);
        ("per_class", string_of_int per_class);
        ("size", Corpus.Shape.size_to_string size);
        ("classes",
         String.concat "," (List.map Corpus.Shape.class_to_string classes));
        ("chaos_seed",
         match Obs.Inject.chaos_seed () with
         | Some s -> string_of_int s
         | None -> "none");
        ("backend",
         match !Pipeline.default_backend with
         | Pipeline.Tree -> "tree"
         | Pipeline.Compiled -> "compiled");
        ("solver", solver_mode_string ()) ]
    in
    let record =
      Driver.Run_record.collect
        ~degraded:r.Driver.Corpus_eval.o_degraded ~meta ()
    in
    Driver.Run_record.write_file out record;
    Printf.eprintf
      "[corpus record: %d scores, %d programs, %d degraded, %d divergent \
       -> %s]\n"
      (List.length record.Driver.Run_record.r_scores)
      r.Driver.Corpus_eval.o_programs
      (List.length record.Driver.Run_record.r_degraded)
      r.Driver.Corpus_eval.o_divergent out;
    finish_with_fault_status ()
  in
  let seed =
    Arg.(value & opt int 1 & info [ "seed" ] ~docv:"N"
           ~doc:"Corpus seed: generation is a pure function of (seed, \
                 class, size, index).")
  in
  let per_class =
    Arg.(value & opt int Driver.Corpus_eval.default_spec.Driver.Corpus_eval.c_per_class
         & info [ "per-class" ] ~docv:"N"
             ~doc:"Generated programs per workload class.")
  in
  let size =
    Arg.(value
         & opt (enum Corpus.Shape.size_presets) Corpus.Shape.medium
         & info [ "size" ] ~docv:"PRESET"
             ~doc:"Size preset: $(b,small), $(b,medium) or $(b,large) \
                   (functions, statements, loop depth, call fanout).")
  in
  let classes =
    Arg.(value & opt (some string) None & info [ "classes" ] ~docv:"LIST"
           ~doc:"Comma-separated workload classes (default: all of \
                 loop_nest, branchy, pointer_table, recursive).")
  in
  let out =
    Arg.(value & opt string "corpus_record.json" & info [ "o"; "out" ]
           ~docv:"FILE" ~doc:"Where to write the corpus run record.")
  in
  Cmd.v
    (Cmd.info "corpus"
       ~doc:"Generate a seeded shaped-program corpus, run every estimator \
             over it, and write per-class score distributions \
             (mean/median/p10/p90) as a typed run record")
    Term.(const run $ jobs_arg $ backend_arg $ fault_arg $ solver_arg $ seed
          $ per_class $ size $ classes $ out)

(* ---- diff: gate a run record against the committed baseline ---- *)

let cmd_diff =
  let run record_path baseline_path timing_factor solver_band html_out =
    let load_record what path =
      match Driver.Run_record.read_file path with
      | Ok r -> r
      | Error e ->
        Printf.eprintf "error reading %s: %s\n" what e;
        exit 2
    in
    let baseline = load_record "baseline" baseline_path in
    let current = load_record "run record" record_path in
    let report =
      Driver.Drift.diff ~timing_factor ~solver_band ~baseline ~current ()
    in
    print_string (Driver.Drift.render report);
    (match html_out with
    | Some path ->
      let oc = open_out_bin path in
      output_string oc (Driver.Report.html ~baseline ~current report);
      close_out oc;
      Printf.eprintf "[html report -> %s]\n" path
    | None -> ());
    if Driver.Drift.has_drift report then exit 1
  in
  let record_path =
    Arg.(required & pos 0 (some file) None & info [] ~docv:"RECORD.json"
           ~doc:"Run record written by $(b,record).")
  in
  let baseline_path =
    Arg.(value & opt string "BASELINE.json" & info [ "baseline" ]
           ~docv:"FILE" ~doc:"Baseline run record (default: the committed \
                              BASELINE.json).")
  in
  let timing_factor =
    Arg.(value & opt float Driver.Drift.default_timing_factor
         & info [ "timing-factor" ] ~docv:"F"
             ~doc:"Timings drift only when they leave the [1/F, F] \
                   multiplicative band around the baseline (scores are \
                   always compared exactly).")
  in
  let solver_band =
    Arg.(value & opt float 0.0
         & info [ "solver-band" ] ~docv:"EPS"
             ~doc:"Accept solver-derived scores (Markov estimators, the \
                   fig6/7 worked example, fig8, fig10 speedups) within a \
                   relative band of $(docv) instead of bit-for-bit — for \
                   gating records produced with $(b,--solver sparse). 0 \
                   (the default) compares everything exactly. A sensible \
                   band is 1e-4 (it must absorb weight-matching tie \
                   flips, not just convergence wobble).")
  in
  let html_out =
    Arg.(value & opt (some string) None & info [ "html" ] ~docv:"FILE"
           ~doc:"Also write a self-contained HTML drift report to $(docv).")
  in
  Cmd.v
    (Cmd.info "diff"
       ~doc:"Compare a run record against the committed baseline; exit 1 \
             on score drift")
    Term.(const run $ record_path $ baseline_path $ timing_factor
          $ solver_band $ html_out)

(* ---- serve: the warm estimator daemon ---- *)

let cmd_serve =
  let run jobs () () () budget_mb store socket workers deadline_ms
      queue_limit connect slow_ms slow_log =
    match connect with
    | Some path -> Driver.Serve.client ~socket:path
    | None ->
      Driver.Serve.run
        { Driver.Serve.c_socket = socket;
          c_store = store;
          c_workers = workers;
          c_deadline_s =
            Option.map (fun ms -> float_of_int ms /. 1000.0) deadline_ms;
          c_queue_limit = queue_limit;
          c_budget_bytes = budget_mb * 1024 * 1024;
          c_jobs = jobs;
          c_slow_ms = slow_ms;
          c_slow_log = slow_log }
  in
  let budget_mb =
    Arg.(value & opt int 256 & info [ "budget-mb" ] ~docv:"MB"
           ~doc:"Byte budget of the incremental store; least-recently-\
                 used entries are evicted past it (evictions change \
                 timings, never results).")
  in
  let store =
    Arg.(value & opt (some string) None & info [ "store" ] ~docv:"DIR"
           ~doc:"Durable store directory: intra solutions are journaled \
                 to disk as they are computed and snapshotted \
                 atomically, so a restarted daemon (graceful or \
                 $(b,kill -9)) starts warm. A torn or corrupt tail is \
                 truncated on load, never fatal. With $(b,--workers), \
                 each worker owns $(docv)/shard-N.")
  in
  let socket =
    Arg.(value & opt (some string) None & info [ "socket" ] ~docv:"PATH"
           ~doc:"Listen on a Unix-domain socket at $(docv) instead of \
                 stdin/stdout; multiple clients multiplex over one warm \
                 store. SIGTERM/SIGINT drain gracefully: finish the \
                 in-flight batch, flush the journal, exit (3 if any \
                 batch degraded).")
  in
  let workers =
    Arg.(value & opt int 0 & info [ "workers" ] ~docv:"N"
           ~doc:"Fork $(docv) supervised worker processes and shard \
                 requests across them by program name. A dead worker is \
                 restarted with exponential backoff and its in-flight \
                 request replayed once; a second death answers a typed \
                 worker-lost error. 0 (default) analyzes in-process.")
  in
  let deadline_ms =
    Arg.(value & opt (some int) None & info [ "deadline-ms" ] ~docv:"MS"
           ~doc:"Per-request wall-clock deadline. An overrunning \
                 analyze answers a typed deadline fault; with \
                 $(b,--workers) a silent worker is additionally killed \
                 and restarted past the deadline plus a one-second \
                 grace.")
  in
  let queue_limit =
    Arg.(value & opt int 256 & info [ "queue-limit" ] ~docv:"N"
           ~doc:"Admission bound on pending requests: a batch that \
                 would push the queue past $(docv) is shed whole, every \
                 request answered with an $(b,overloaded) error instead \
                 of waiting.")
  in
  let connect =
    Arg.(value & opt (some string) None & info [ "connect" ] ~docv:"PATH"
           ~doc:"Client mode: forward stdin's request batches to the \
                 daemon listening on $(docv), print one response line \
                 per request, exit. Replaces netcat in scripts.")
  in
  let slow_ms =
    Arg.(value & opt (some float) None & info [ "slow-ms" ] ~docv:"MS"
           ~doc:"Slow-request threshold: a request slower than $(docv) \
                 milliseconds is appended — with its merged parent+\
                 worker span tree — to the bounded in-memory slow log \
                 that $(b,metrics) reports.")
  in
  let slow_log =
    Arg.(value & opt (some string) None & info [ "slow-log" ] ~docv:"FILE"
           ~doc:"Also append each slow-request entry to $(docv) as one \
                 NDJSON line (requires $(b,--slow-ms)).")
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:"Run the warm estimator server: newline-delimited JSON \
             requests on stdin or a Unix socket (analyze, scores, \
             invalidate, stats, metrics, resize, shutdown; a blank line \
             flushes a batch), one JSON response per line. Analyses are \
             served incrementally from the per-function content-addressed \
             store — durably under $(b,--store) — and adjacent analyze \
             requests in a batch run in parallel, in-process or across \
             a supervised $(b,--workers) pool; a failing request \
             degrades its own response, never the daemon.")
    Term.(const run $ jobs_arg $ backend_arg $ solver_arg $ fault_arg
          $ budget_mb $ store $ socket $ workers $ deadline_ms
          $ queue_limit $ connect $ slow_ms $ slow_log)

(* ---- watch: live dashboard over a daemon's metrics verb ---- *)

let cmd_watch =
  let run socket interval_ms polls no_clear =
    Driver.Watch.run ~socket ~interval_ms ~polls ~clear:(not no_clear) ()
  in
  let socket =
    Arg.(required & opt (some string) None & info [ "connect" ] ~docv:"PATH"
           ~doc:"Unix-domain socket of the daemon to watch (its \
                 $(b,--socket) path).")
  in
  let interval_ms =
    Arg.(value & opt int 1000 & info [ "interval-ms" ] ~docv:"MS"
           ~doc:"Polling interval.")
  in
  let polls =
    Arg.(value & opt int 0 & info [ "polls" ] ~docv:"N"
           ~doc:"Stop after $(docv) polls (0 = run until the daemon \
                 goes away). Scripts use a small count; interactive use \
                 leaves the default.")
  in
  let no_clear =
    Arg.(value & flag & info [ "no-clear" ]
           ~doc:"Do not clear the terminal between polls; append each \
                 dashboard instead (script/CI friendly).")
  in
  Cmd.v
    (Cmd.info "watch"
       ~doc:"Poll a running estimator daemon's $(b,metrics) verb and \
             render a refreshing text dashboard: rolling throughput, \
             latency quantiles (p50/p90/p99/p999), cache hit rate, \
             queue depth, slow-request count and per-shard \
             restart/breaker state.")
    Term.(const run $ socket $ interval_ms $ polls $ no_clear)

(* ---- suite ---- *)

let cmd_suite =
  let run () =
    List.iter
      (fun (p : Suite.Bench_prog.t) ->
        Printf.printf "%-16s %4d loc  %d inputs  %s\n" p.Suite.Bench_prog.name
          (Suite.Bench_prog.loc p)
          (Suite.Bench_prog.n_runs p)
          p.Suite.Bench_prog.description)
      Suite.Registry.all
  in
  Cmd.v (Cmd.info "suite" ~doc:"List the benchmark suite")
    Term.(const run $ const ())

(* With no subcommand, [--trace] / [--metrics-out] run the full
   experiment suite under instrumentation (the one-flag observability
   entry point), and [--chaos SEED] runs it under fault injection;
   bare invocation still shows the usage page. *)
let default_term =
  let run jobs () () () trace metrics_out =
    if trace || metrics_out <> None || Obs.Inject.chaos_seed () <> None
    then begin
      Driver.Parallel.set_jobs jobs;
      Driver.Trace.with_reporting ~trace ~metrics_out (fun () ->
          print_string (Driver.Experiments.run_all ()));
      finish_with_fault_status ();
      `Ok ()
    end
    else `Help (`Pager, None)
  in
  Term.(ret (const run $ jobs_arg $ backend_arg $ fault_arg $ solver_arg
             $ trace_arg $ metrics_arg))

let main =
  Cmd.group ~default:default_term
    (Cmd.info "estimator" ~version:"1.0"
       ~doc:"Static execution-frequency estimators (PLDI 1994 reproduction)")
    [ cmd_parse; cmd_cfg; cmd_estimate; cmd_inter; cmd_callsites; cmd_run;
      cmd_score; cmd_annotate; cmd_experiment; cmd_record; cmd_corpus;
      cmd_diff; cmd_serve; cmd_watch; cmd_suite ]

let () = exit (Cmd.eval main)
