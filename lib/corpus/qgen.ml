(* The backend-differential program generator, promoted from
   test/test_compile.ml.  It leans into the pre-resolution surface:
   array indexing, pointer arguments, helper calls (profiled call
   sites), doubles, globals, string output, switch and every loop form
   — with all divisions guarded so no generated program faults.  Loops
   *may* diverge ([while (x > 0) { x--; x++; }]); consumers run these
   under a fuel budget and compare the partial observables. *)

let gen_program : string QCheck.arbitrary =
  let open QCheck.Gen in
  let simple =
    oneofl
      [ "x++;"; "y += x;"; "x = y - 1;"; "g = g + (x & 15);"; "bump(&y);";
        "arr[x & 7] = y;"; "y = y + arr[(x + y) & 7];"; "d = d * 0.5 + x;";
        "y = x / ((y & 7) + 1);"; "x = y % ((x & 3) + 2);";
        "y += helper(x & 7);"; "printf(\"%d,\", x ^ y);"; "g ^= y;";
        "x = (int) d;"; "y = -x + (x << 1);" ]
  in
  let rec stmt depth =
    if depth <= 0 then simple
    else
      frequency
        [ (4, simple);
          (2, map2 (Printf.sprintf "if (x > %d) { %s }") (int_bound 9)
                 (stmt (depth - 1)));
          (1, map2 (Printf.sprintf "if ((y & 1) == %d) { %s } else { g--; }")
                 (int_bound 1) (stmt (depth - 1)));
          (1, map (Printf.sprintf "while (x > 0) { x--; %s }")
                 (stmt (depth - 1)));
          (1, map (Printf.sprintf "do { y--; %s } while (y > 0);")
                 (stmt (depth - 1)));
          (1, map2 (Printf.sprintf "for (i = 0; i < %d; i++) { %s }")
                 (int_range 1 5) (stmt (depth - 1)));
          (1, map
                 (Printf.sprintf
                    "switch (x & 3) { case 0: %s break; case 1: y++; break; \
                     default: g++; }")
                 (stmt (depth - 1))) ]
  in
  let body =
    list_size (int_range 1 10) (stmt 3) >|= fun stmts ->
    Printf.sprintf
      {|int g = 3;
double d = 0.25;
int arr[8];
void bump(int *p) { *p = *p + 1; }
int helper(int n) {
  int i; int s = 0;
  for (i = 0; i < (n & 3) + 1; i++) { s += i; }
  return s;
}
int main(void) {
  int x = 5; int y = 2; int i;
  %s
  printf("%%d %%d %%d %%g\n", x, y, g, d);
  return (x + y) & 7;
}|}
      (String.concat "\n  " stmts)
  in
  QCheck.make body ~print:(fun s -> s)
