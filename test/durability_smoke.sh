#!/bin/sh
# End-to-end durability smoke test for the socket daemon, runnable
# locally and in CI. Four legs:
#
#   1. a sharded socket daemon with a persistent store serves a cold
#      pass then a warm pass (program cache hit, zero recomputation);
#   2. the daemon is killed with SIGKILL — no chance to flush anything
#      beyond what the journal already holds — and a fresh daemon over
#      the same store serves the same program with zero function
#      misses, reporting restored entries in stats;
#   3. SIGTERM drains the healthy daemon: exit 0, socket file removed,
#      per-shard journals on disk;
#   4. chaos worker-kill under a fixed seed is deterministic: two
#      daemons under --chaos 42 lose exactly the same requests, and a
#      daemon that lost workers drains with the degraded exit code 3.
set -eu

BIN="${1:-./_build/default/bin/main.exe}"
dir="$(mktemp -d)"
trap 'rm -rf "$dir"' EXIT

fail () { echo "durability_smoke: FAIL: $1" >&2; exit 1; }

wait_path () { # path
  _i=0
  while [ ! -e "$1" ]; do
    _i=$((_i + 1))
    [ "$_i" -lt 100 ] || fail "timed out waiting for $1"
    sleep 0.1
  done
}

src='int f(int x) { return x + 1; }\nint main() { return f(3); }\n'

cat > "$dir/analyze.session" <<EOF
{"id":1,"op":"analyze","name":"dur","source":"$src"}
EOF
cat > "$dir/stats.session" <<'EOF'
{"id":2,"op":"stats"}
EOF

# --- leg 1: cold then warm through the socket -------------------------
"$BIN" serve --socket "$dir/sock" --store "$dir/store" --workers 2 \
  > /dev/null 2> "$dir/daemon1.err" &
srv=$!
wait_path "$dir/sock"

"$BIN" serve --connect "$dir/sock" < "$dir/analyze.session" > "$dir/cold.out"
grep -q '"ok":true' "$dir/cold.out"           || fail "cold analyze not ok"
grep -q '"program_hit":false' "$dir/cold.out" || fail "cold analyze claims a hit"

"$BIN" serve --connect "$dir/sock" < "$dir/analyze.session" > "$dir/warm.out"
grep -q '"program_hit":true' "$dir/warm.out"  || fail "warm analyze missed"
grep -q '"fn_misses":0' "$dir/warm.out"       || fail "warm analyze recomputed"

# --- leg 2: SIGKILL, restart over the same store, still warm ----------
kill -KILL "$srv"
rc=0; wait "$srv" || rc=$?
[ "$rc" -ne 0 ] || fail "SIGKILL reported a clean exit"
sleep 0.3   # orphaned workers see EOF and finish on their own
[ -f "$dir/store/shard-0/journal.bin" ] || fail "shard 0 journal missing after SIGKILL"

# a SIGKILLed daemon leaves its socket file behind; clear it so the
# path reappearing means the *new* daemon is accepting
rm -f "$dir/sock"
"$BIN" serve --socket "$dir/sock" --store "$dir/store" --workers 2 \
  > /dev/null 2> "$dir/daemon2.err" &
srv=$!
wait_path "$dir/sock"

"$BIN" serve --connect "$dir/sock" < "$dir/analyze.session" > "$dir/restart.out"
grep -q '"ok":true' "$dir/restart.out"     || fail "post-restart analyze not ok"
grep -q '"fn_misses":0' "$dir/restart.out" || fail "restart recomputed functions"
cold_scores="$(sed 's/.*"scores"://' "$dir/cold.out")"
restart_scores="$(sed 's/.*"scores"://' "$dir/restart.out")"
[ "$cold_scores" = "$restart_scores" ]     || fail "restart scores differ from cold"

"$BIN" serve --connect "$dir/sock" < "$dir/stats.session" > "$dir/stats.out"
restored="$(sed -n 's/.*"restored":\([0-9][0-9]*\).*/\1/p' "$dir/stats.out")"
[ -n "$restored" ] && [ "$restored" -gt 0 ] || fail "stats reports no restored entries"

# --- leg 3: SIGTERM drains cleanly ------------------------------------
kill -TERM "$srv"
rc=0; wait "$srv" || rc=$?
[ "$rc" -eq 0 ]            || fail "healthy drain exited $rc (want 0)"
[ ! -e "$dir/sock" ]       || fail "socket file survived the drain"

# --- leg 4: chaos worker-kill is deterministic ------------------------
cat > "$dir/chaos.session" <<'EOF'
{"id":1,"op":"analyze","name":"prog-a","source":"int main() { return 1; }\n"}
{"id":2,"op":"analyze","name":"prog-b","source":"int main() { return 2; }\n"}
{"id":3,"op":"analyze","name":"prog-c","source":"int main() { return 3; }\n"}
{"id":4,"op":"analyze","name":"prog-d","source":"int main() { return 4; }\n"}
{"id":5,"op":"analyze","name":"prog-e","source":"int main() { return 5; }\n"}
{"id":6,"op":"analyze","name":"prog-f","source":"int main() { return 6; }\n"}
{"id":7,"op":"analyze","name":"prog-g","source":"int main() { return 7; }\n"}
{"id":8,"op":"analyze","name":"prog-h","source":"int main() { return 8; }\n"}
EOF

chaos_run () { # out-file; writes doomed ids to $1.doomed, drain rc to $1.rc
  "$BIN" serve --socket "$dir/sock" --workers 2 --chaos 42 \
    > /dev/null 2> "$dir/chaos.err" &
  srv=$!
  wait_path "$dir/sock"
  "$BIN" serve --connect "$dir/sock" < "$dir/chaos.session" > "$1"
  kill -TERM "$srv"
  chaos_rc=0; wait "$srv" || chaos_rc=$?
  echo "$chaos_rc" > "$1.rc"
  grep '"worker_lost":true' "$1" | sed -n 's/.*"id":\([0-9]*\).*/\1/p' \
    > "$1.doomed" || true
}

chaos_run "$dir/chaos1.out"
chaos_run "$dir/chaos2.out"
doomed1="$(cat "$dir/chaos1.out.doomed")"
doomed2="$(cat "$dir/chaos2.out.doomed")"
rc1="$(cat "$dir/chaos1.out.rc")"
rc2="$(cat "$dir/chaos2.out.rc")"

[ -n "$doomed1" ]           || fail "seed 42 doomed no request"
[ "$doomed1" = "$doomed2" ] || fail "chaos doom set differs across runs: [$doomed1] vs [$doomed2]"
[ "$rc1" -eq 3 ]            || fail "chaos drain exited $rc1 (want degraded 3)"
[ "$rc2" -eq 3 ]            || fail "second chaos drain exited $rc2 (want degraded 3)"
n_ok="$(grep -c '"ok":true' "$dir/chaos1.out" || true)"
[ "$n_ok" -gt 0 ]           || fail "chaos killed every request, not just the doomed"

# --- leg 5: the telemetry plane across the fork boundary --------------
# A sharded daemon with the slow threshold forced to zero: every
# request lands in the slow log with a span tree merged from parent
# and worker processes, and the metrics verb returns one snapshot
# whose request histogram counts exactly the requests served.
rm -f "$dir/sock"
"$BIN" serve --socket "$dir/sock" --workers 2 --slow-ms 0 \
  --slow-log "$dir/slow.ndjson" > /dev/null 2> "$dir/telemetry.err" &
srv=$!
wait_path "$dir/sock"

"$BIN" serve --connect "$dir/sock" < "$dir/chaos.session" > "$dir/telemetry.out"
n_served="$(grep -c '"ok":true' "$dir/telemetry.out" || true)"
[ "$n_served" -eq 8 ] || fail "telemetry daemon served $n_served of 8 requests"

printf '{"id":9,"op":"metrics"}\n' \
  | "$BIN" serve --connect "$dir/sock" > "$dir/metrics.out"
grep -q '"ok":true' "$dir/metrics.out"   || fail "metrics verb not ok"
grep -q '"schema":1' "$dir/metrics.out"  || fail "metrics snapshot lacks its schema version"
grep -q '"workers":2' "$dir/metrics.out" || fail "metrics snapshot lacks the worker count"
req_count="$(sed -n 's/.*"serve\.request\.ns":{"count":\([0-9][0-9]*\).*/\1/p' "$dir/metrics.out")"
[ "$req_count" = "8" ] || fail "serve.request.ns counted $req_count requests (want 8)"

kill -TERM "$srv"
rc=0; wait "$srv" || rc=$?
[ "$rc" -eq 0 ] || fail "telemetry daemon drained with exit $rc (want 0)"

[ -s "$dir/slow.ndjson" ] || fail "forced-slow requests left no slow log"
grep -q '"label":"request"' "$dir/slow.ndjson" \
  || fail "slow entries lack the parent-side span"
grep -q '"label":"worker:' "$dir/slow.ndjson" \
  || fail "slow entries lack the worker-side spans"

echo "durability_smoke: OK (restored=$restored, doomed ids: $(echo $doomed1 | tr '\n' ' '), slow entries: $(wc -l < "$dir/slow.ndjson"))"
