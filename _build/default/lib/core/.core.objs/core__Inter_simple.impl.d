lib/core/inter_simple.ml: Array Cfg_ir Hashtbl Lazy List Loop_model Option
