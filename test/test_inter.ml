(* Inter-procedural estimator tests: the call graph (arcs, address-taken
   census, SCCs), the four simple estimators, the Markov model including
   the pointer node and the recursion repair, and call-site ranking. *)

module Cfg = Cfg_ir.Cfg
module Callgraph = Cfg_ir.Callgraph
module Scc = Cfg_ir.Scc
module Pipeline = Core.Pipeline
module IS = Core.Inter_simple
module MI = Core.Markov_inter

let compile src = Pipeline.compile ~name:"t" src

let estimate_assoc c kind =
  let intra = Pipeline.intra_provider c Pipeline.Ismart in
  match kind with
  | `Simple k -> IS.estimate c.Pipeline.graph ~intra k
  | `Markov -> (MI.estimate c.Pipeline.graph ~intra).MI.freqs

let value assoc name = List.assoc name assoc

(* ---- call graph structure ---- *)

let chain_src =
  {|
int leaf(int x) { return x + 1; }
int mid(int x) { return leaf(x) + leaf(x + 1); }
int main(void) { return mid(1); }
|}

let test_callgraph_arcs () =
  let c = compile chain_src in
  let g = c.Pipeline.graph in
  Alcotest.(check int) "3 nodes" 3 (Callgraph.n_nodes g);
  let mid = Option.get (Callgraph.node_of_name g "mid") in
  let leaf = Option.get (Callgraph.node_of_name g "leaf") in
  let main_ = Option.get (Callgraph.node_of_name g "main") in
  Alcotest.(check (list int)) "main calls mid" [ mid ]
    (Callgraph.succs g main_);
  Alcotest.(check (list int)) "mid calls leaf" [ leaf ]
    (Callgraph.succs g mid);
  (* two sites merge into one arc *)
  let sites = Hashtbl.find g.Callgraph.direct_arcs (mid, leaf) in
  Alcotest.(check int) "two call sites on the arc" 2 (List.length sites)

let test_address_census () =
  let c =
    compile
      {|
int a(int x) { return x; }
int b(int x) { return x; }
int (*table[3])(int) = { a, a, b };
int main(void) {
  int (*fp)(int) = &a;
  return fp(1) + table[2](2);
}
|}
  in
  let g = c.Pipeline.graph in
  Alcotest.(check int) "a taken 3x" 3 (Hashtbl.find g.Callgraph.address_taken "a");
  Alcotest.(check int) "b taken 1x" 1 (Hashtbl.find g.Callgraph.address_taken "b");
  Alcotest.(check int) "total" 4 (Callgraph.total_address_taken g);
  Alcotest.(check bool) "main not taken" false
    (Hashtbl.mem g.Callgraph.address_taken "main")

let test_call_position_not_address () =
  (* a direct call is a use, not an address-of *)
  let c = compile chain_src in
  Alcotest.(check int) "no addresses taken" 0
    (Callgraph.total_address_taken c.Pipeline.graph)

let test_scc () =
  let succs = function
    | 0 -> [ 1 ] | 1 -> [ 2 ] | 2 -> [ 1; 3 ] | 3 -> [] | 4 -> [ 4 ]
    | _ -> []
  in
  let r = Scc.compute 5 succs in
  Alcotest.(check bool) "1 and 2 together" true
    (r.Scc.component.(1) = r.Scc.component.(2));
  Alcotest.(check bool) "0 alone" true
    (r.Scc.component.(0) <> r.Scc.component.(1));
  Alcotest.(check bool) "cycle detection" true (Scc.in_cycle r succs 1);
  Alcotest.(check bool) "self loop is a cycle" true (Scc.in_cycle r succs 4);
  Alcotest.(check bool) "3 is not cyclic" false (Scc.in_cycle r succs 3)

(* ---- simple estimators ---- *)

let test_call_site_estimator () =
  let c = compile chain_src in
  let est = estimate_assoc c (`Simple IS.Call_site) in
  (* mid called from main's single block (freq 1); leaf from two sites in
     mid (freq 1 each) *)
  Alcotest.(check (float 1e-9)) "main gets external 1" 1.0 (value est "main");
  Alcotest.(check (float 1e-9)) "mid" 1.0 (value est "mid");
  Alcotest.(check (float 1e-9)) "leaf" 2.0 (value est "leaf")

let rec_src =
  {|
int fact(int n) { if (n < 2) return 1; return n * fact(n - 1); }
int even(int n) { if (n == 0) return 1; return odd(n - 1); }
int odd(int n) { if (n == 0) return 0; return even(n - 1); }
int main(void) { return fact(5) + even(10); }
|}

let test_direct_vs_all_rec () =
  let c = compile rec_src in
  let call_site = estimate_assoc c (`Simple IS.Call_site) in
  let direct = estimate_assoc c (`Simple IS.Direct) in
  let all_rec = estimate_assoc c (`Simple IS.All_rec) in
  (* fact is directly recursive: x5 under both direct and all_rec *)
  Alcotest.(check (float 1e-6)) "direct multiplies fact"
    (5.0 *. value call_site "fact")
    (value direct "fact");
  (* even/odd are mutually recursive: only all_rec multiplies them *)
  Alcotest.(check (float 1e-6)) "direct leaves even alone"
    (value call_site "even") (value direct "even");
  Alcotest.(check (float 1e-6)) "all_rec multiplies even"
    (5.0 *. value call_site "even")
    (value all_rec "even")

let test_all_rec2_propagates () =
  (* all_rec2 scales callee counts by caller counts: a function called
     only from a hot function must rise *)
  let c =
    compile
      {|
int helper(int x) { return x + 1; }
int hot(int n) { int i, s = 0; for (i = 0; i < n; i++) s += helper(i); return s; }
int main(void) { int i, s = 0; for (i = 0; i < 100; i++) s += hot(10); return s; }
|}
  in
  let one = estimate_assoc c (`Simple IS.Call_site) in
  let two = estimate_assoc c (`Simple IS.All_rec2) in
  (* first round: hot ~ 4 (loop body), helper ~ 4.
     second round: helper gets hot's count * 4 = 16. *)
  Alcotest.(check bool) "helper rises" true
    (value two "helper" > value one "helper" +. 1.0)

(* Pin All_rec2's second-round semantics on a hand-computed example. The
   second accumulation deliberately scales callers by the *multiplied*
   first-round counts (the paper's "All_rec counts"), so the recursion
   multiplier compounds. With every block frequency forced to 1:
     base:    main = 1 (external), f = 1 (main) + 1 (g) = 2, g = 1 (f)
     round 1: f, g are in recursion -> f = 10, g = 5
     round 2: f = 1*1 (main) + 5*1 (g) = 6, g = 10*1 (f) = 10
              then * 5 -> f = 30, g = 50
   The unmutated-base reading would give f = 15, g = 10 instead; this
   test pins the documented one. *)
let test_all_rec2_compounding_pinned () =
  let c =
    compile
      {|
int g(int n);
int f(int n) { if (n == 0) return 0; return g(n - 1); }
int g(int n) { return f(n); }
int main(void) { return f(5); }
|}
  in
  let intra _ = Array.make 32 1.0 in
  let est = IS.estimate c.Pipeline.graph ~intra IS.All_rec2 in
  Alcotest.(check (float 1e-9)) "main" 1.0 (value est "main");
  Alcotest.(check (float 1e-9)) "f" 30.0 (value est "f");
  Alcotest.(check (float 1e-9)) "g" 50.0 (value est "g")

let test_indirect_apportioning () =
  let c =
    compile
      {|
int a(int x) { return x; }
int b(int x) { return x; }
int use(int (*f)(int)) { return f(0); }
int (*pick)(int) = a;
int main(void) { pick = b; return use(a) + use(a) + use(b) + pick(1); }
|}
  in
  (* address census: a appears twice (init + use(a) twice? no — use(a)
     passes a as a value = address-of), b twice. *)
  let g = c.Pipeline.graph in
  let a_count = Hashtbl.find g.Callgraph.address_taken "a" in
  let b_count = Hashtbl.find g.Callgraph.address_taken "b" in
  Alcotest.(check int) "a census" 3 a_count;
  Alcotest.(check int) "b census" 2 b_count;
  let est = estimate_assoc c (`Simple IS.Call_site) in
  (* indirect pool splits 3:2 between a and b *)
  Alcotest.(check bool) "a gets more indirect flow" true
    (value est "a" > value est "b")

(* ---- markov inter ---- *)

let test_markov_chain_propagation () =
  let c =
    compile
      {|
int leaf(int x) { return x; }
int mid(int n) { int i, s = 0; for (i = 0; i < n; i++) s += leaf(i); return s; }
int main(void) { int i, s = 0; for (i = 0; i < 3; i++) s += mid(i); return s; }
|}
  in
  let est = estimate_assoc c `Markov in
  Alcotest.(check (float 1e-6)) "main" 1.0 (value est "main");
  (* mid called from main's loop body: 4 per entry *)
  Alcotest.(check (float 1e-6)) "mid" 4.0 (value est "mid");
  (* leaf called from mid's loop body: 4 * 4 = 16 *)
  Alcotest.(check (float 1e-6)) "leaf" 16.0 (value est "leaf")

let test_markov_recursion_repair () =
  (* count_nodes: two recursive calls in the likely arm -> raw arc weight
     1.6 -> negative solution -> clamped to 0.8 -> finite positive *)
  let c =
    compile
      {|
struct t { struct t *l; struct t *r; };
int count_nodes(struct t *n) {
  if (n == NULL)
    return 0;
  else
    return count_nodes(n->l) + count_nodes(n->r) + 1;
}
int main(void) { return count_nodes(NULL); }
|}
  in
  let intra = Pipeline.intra_provider c Pipeline.Ismart in
  (* raw: invalid (negative) *)
  (match MI.estimate_raw c.Pipeline.graph ~intra with
  | Some raw ->
    Alcotest.(check bool) "raw solve goes negative" true
      (List.assoc "count_nodes" raw < 0.0)
  | None -> Alcotest.fail "raw solve should succeed numerically");
  (* repaired: positive and bounded *)
  let result = MI.estimate c.Pipeline.graph ~intra in
  let v = List.assoc "count_nodes" result.MI.freqs in
  Alcotest.(check bool) "repaired positive" true (v > 0.0);
  Alcotest.(check bool) "clamp recorded" true
    (result.MI.diag.MI.clamped_self_arcs <> []);
  (* the self arc of the original system is 2 * 0.8 = 1.6 *)
  let self =
    List.find_map
      (fun (s, d, w) ->
        if s = "count_nodes" && d = "count_nodes" then Some w else None)
      (MI.arc_weights c.Pipeline.graph ~intra)
  in
  Alcotest.(check (float 1e-9)) "raw self-arc weight" 1.6 (Option.get self)

(* Exercise the SCC repair loop itself (count_nodes only clamps): two
   call sites in each direction of a mutual recursion put 2.0-weight arcs
   on both legs of the cycle, a gain of 4.0 that no self-arc clamp can
   fix. The repair must rescale exactly one SCC in a bounded number of
   steps, and the repaired frequencies are pinned so the hash-set
   membership rewrite of the repair loop provably preserves results. *)
let test_scc_repair_loop_pinned () =
  let c =
    compile
      {|
int g(int n);
int f(int n) { if (n < 2) return n; return g(n - 1) + g(n - 2); }
int g(int n) { if (n < 2) return n; return f(n - 1) + f(n - 2); }
int main(void) { return f(10); }
|}
  in
  let intra = Pipeline.intra_provider c Pipeline.Ismart in
  (* both cross arcs really are 2.0 under the smart intra estimate *)
  List.iter
    (fun (s, d) ->
      let w =
        List.find_map
          (fun (s', d', w) -> if s' = s && d' = d then Some w else None)
          (MI.arc_weights c.Pipeline.graph ~intra)
      in
      Alcotest.(check (float 1e-9))
        (Printf.sprintf "arc %s->%s" s d)
        2.0 (Option.get w))
    [ ("f", "g"); ("g", "f") ];
  let result = MI.estimate c.Pipeline.graph ~intra in
  let diag = result.MI.diag in
  Alcotest.(check (list (pair int (float 1e-9)))) "no self-arc clamps" []
    diag.MI.clamped_self_arcs;
  Alcotest.(check int) "one SCC repaired" 1 diag.MI.repaired_sccs;
  Alcotest.(check int) "scale steps" 4 diag.MI.scale_iterations;
  Alcotest.(check (float 1e-6)) "main" 1.0
    (List.assoc "main" result.MI.freqs);
  Alcotest.(check (float 1e-6)) "f" 3.0403328
    (List.assoc "f" result.MI.freqs);
  Alcotest.(check (float 1e-6)) "g" 2.4906406
    (List.assoc "g" result.MI.freqs)

let test_markov_pointer_node () =
  let c =
    compile
      {|
int a(int x) { return x; }
int b(int x) { return x * 2; }
int main(void) {
  int (*fp)(int) = a;
  int i, s = 0;
  for (i = 0; i < 10; i++) {
    if (i % 2) fp = b;
    s += fp(i);
  }
  return s;
}
|}
  in
  let intra = Pipeline.intra_provider c Pipeline.Ismart in
  let result = MI.estimate c.Pipeline.graph ~intra in
  (match result.MI.pointer_freq with
  | Some f -> Alcotest.(check bool) "pointer node has flow" true (f > 0.0)
  | None -> Alcotest.fail "pointer node expected");
  (* both targets receive a share *)
  Alcotest.(check bool) "a gets flow" true
    (List.assoc "a" result.MI.freqs > 0.0);
  Alcotest.(check bool) "b gets flow" true
    (List.assoc "b" result.MI.freqs > 0.0)

let test_markov_mutual_recursion_bounded () =
  let c = compile rec_src in
  let intra = Pipeline.intra_provider c Pipeline.Ismart in
  let result = MI.estimate c.Pipeline.graph ~intra in
  List.iter
    (fun (name, v) ->
      if Float.is_nan v || v < -1e-9 || v > 1e6 then
        Alcotest.failf "%s has unreasonable estimate %f" name v)
    result.MI.freqs

(* ---- call-site ranking ---- *)

let test_callsite_ranking () =
  let c =
    compile
      {|
int work(int x) { return x * x; }
int hot(int n) { int i, s = 0; for (i = 0; i < n; i++) s += work(i); return s; }
int cold(int n) { return work(n); }
int main(void) { if (0) return cold(1); return hot(100); }
|}
  in
  let intra = Pipeline.intra_provider c Pipeline.Ismart in
  let est = Pipeline.callsite_estimate c ~intra Pipeline.Imarkov_inter in
  let sites = Cfg.direct_sites c.Pipeline.prog in
  let find pred =
    List.mapi (fun i cs -> (i, cs)) sites
    |> List.find_map (fun (i, cs) -> if pred cs then Some est.(i) else None)
    |> Option.get
  in
  let hot_site =
    find (fun cs ->
        cs.Cfg.cs_fun = "hot" && cs.Cfg.cs_callee = Cfg.Direct "work")
  in
  let cold_site =
    find (fun cs ->
        cs.Cfg.cs_fun = "cold" && cs.Cfg.cs_callee = Cfg.Direct "work")
  in
  Alcotest.(check bool) "hot site ranks above cold" true
    (hot_site > cold_site)

let test_callsite_omits_indirect () =
  let c =
    compile
      {|
int a(int x) { return x; }
int main(void) { int (*fp)(int) = a; return fp(1) + a(2); }
|}
  in
  let sites = Cfg.direct_sites c.Pipeline.prog in
  Alcotest.(check int) "only the direct site" 1 (List.length sites)

let suite =
  [ Alcotest.test_case "call graph arcs" `Quick test_callgraph_arcs;
    Alcotest.test_case "address census" `Quick test_address_census;
    Alcotest.test_case "calls are not address-of" `Quick
      test_call_position_not_address;
    Alcotest.test_case "scc" `Quick test_scc;
    Alcotest.test_case "call_site estimator" `Quick test_call_site_estimator;
    Alcotest.test_case "direct vs all_rec" `Quick test_direct_vs_all_rec;
    Alcotest.test_case "all_rec2 propagates" `Quick test_all_rec2_propagates;
    Alcotest.test_case "all_rec2 compounding pinned" `Quick
      test_all_rec2_compounding_pinned;
    Alcotest.test_case "scc repair loop pinned" `Quick
      test_scc_repair_loop_pinned;
    Alcotest.test_case "indirect apportioning" `Quick
      test_indirect_apportioning;
    Alcotest.test_case "markov propagation" `Quick
      test_markov_chain_propagation;
    Alcotest.test_case "markov recursion repair" `Quick
      test_markov_recursion_repair;
    Alcotest.test_case "markov pointer node" `Quick test_markov_pointer_node;
    Alcotest.test_case "markov bounded on mutual recursion" `Quick
      test_markov_mutual_recursion_bounded;
    Alcotest.test_case "call-site ranking" `Quick test_callsite_ranking;
    Alcotest.test_case "indirect sites omitted" `Quick
      test_callsite_omits_indirect ]
