(* A benchmark program: C source in the supported subset plus a set of
   profiling inputs. Mirrors the paper's Table 1 suite: each mini program
   reproduces the control-flow personality of one of the originals. *)

type run = {
  r_argv : string list; (* argv[1..] *)
  r_input : string;     (* stdin contents *)
}

type t = {
  name : string;
  description : string;    (* Table 1 description column *)
  analogue : string;       (* which paper program it stands in for *)
  source : string;
  runs : run list;         (* >= 4 inputs, as in the paper *)
}

let run ?(argv = []) ?(input = "") () = { r_argv = argv; r_input = input }

(* A synthetic (generated) program. Corpus rows wear the same record as
   the hand-written suite so every [Bench_prog] consumer — [loc],
   [n_runs], the pipeline stages — handles them unchanged; only the
   analogue column marks their origin. *)
let synthetic ~name ~description ~source ~runs : t =
  { name; description; analogue = "generated"; source; runs }

(* Source lines of code (non-blank), for the Table 1 line-count column. *)
let loc (p : t) : int =
  String.split_on_char '\n' p.source
  |> List.filter (fun l -> String.trim l <> "")
  |> List.length

let n_runs (p : t) = List.length p.runs
