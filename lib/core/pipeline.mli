(** End-to-end orchestration: compile C source, profile it on inputs, and
    score every estimator with the paper's protocol (section 3): a static
    estimate is scored against each profile separately and averaged;
    profiling-as-estimate is scored by matching each profile against the
    normalized aggregate of the others.

    Thread safety: every function here is pure per call — all mutation
    (parser state, typing context, CFG builder, interpreter memory and
    profile counters) lives in values created by the call itself, so
    distinct programs can be compiled, profiled and estimated
    concurrently from different domains. The one piece of shared state
    an estimate reads is {!Config.current}; callers that mutate it (the
    ablation experiments) must do so strictly between parallel
    regions. *)

module Ast = Cfront.Ast
module Typecheck = Cfront.Typecheck
module Usage = Cfront.Usage
module Parser = Cfront.Parser
module Cfg = Cfg_ir.Cfg
module Build = Cfg_ir.Build
module Callgraph = Cfg_ir.Callgraph
module Eval = Cinterp.Eval
module Compile = Cinterp.Compile
module Profile = Cinterp.Profile

(** Interpreter back end used for profiling: the reference AST-walking
    {!Eval} or the closure-compiled {!Compile}. The two are proven to
    produce bit-identical outcomes (profiles, stdout, exit codes), so
    the selector only affects speed. *)
type backend = Tree | Compiled

val backend_to_string : backend -> string
val backend_of_string : string -> backend option

(** Process-wide default back end ([Compiled] unless overridden with
    [--interp-backend]). Set it before spawning parallel work. *)
val default_backend : backend ref

(** A compiled program: typed AST, CFGs, call graph, plus lazily built
    shared state (closure-compiled executable, per-function usage memo).
    The mutable fields are lock-protected; the record may be shared
    freely across domains. *)
type compiled = private {
  name : string;
  source : string;
  tc : Typecheck.t;
  prog : Cfg.program;
  graph : Callgraph.t;
  exe_lock : Mutex.t;
  mutable exe : Compile.prog option;
  usage_lock : Mutex.t;
  usage_tbl : (string, Usage.t) Hashtbl.t;
  hash_lock : Mutex.t;
  mutable unit_sig : string option;
  hash_tbl : (string, string) Hashtbl.t;
}

(** [compile ?defines ~name source] runs preprocess → parse → typecheck →
    CFG construction → call-graph construction.

    @raise Cfront.Parser.Error or {!Typecheck.Error} on invalid source. *)
val compile : ?defines:(string * string) list -> name:string -> string -> compiled

(** The closure-compiled executable, built on first use and memoized
    (thread-safe). Call during warm-up to move the one-time lowering
    cost off the profiling path. *)
val closure_exe : compiled -> Compile.prog

(** Memoized [Usage.of_fun] for estimator sweeps (thread-safe). *)
val usage_of : compiled -> Cfg.fn -> Usage.t

(** Memoized per-function content hash ({!Cfront.Fnhash}), thread-safe.
    Covers the function's signature and body (whitespace/comment
    invariant), the globals it mentions, its callees' prototypes and
    the translation unit's struct/enum signature — everything an intra
    estimate can depend on besides {!Config.current} and the solver
    mode, which cache keys must add separately. *)
val fn_hash : compiled -> Cfg.fn -> string

(** One profiling run: command-line arguments and stdin contents. *)
type run = { argv : string list; input : string }

(** Interpret the program once, collecting a profile. [backend] defaults
    to {!default_backend}. [deadline_s] bounds the run's wall-clock time;
    exceeding it (or [fuel]) raises {!Eval.Budget_exhausted} carrying
    the partial outcome — a runaway run yields a partial profile, never
    a hang. *)
val run_once :
  ?fuel:int ->
  ?deadline_s:float ->
  ?backend:backend ->
  compiled ->
  run ->
  Eval.outcome

(** Profiles for a list of runs. *)
val profile_runs :
  ?fuel:int ->
  ?deadline_s:float ->
  ?backend:backend ->
  compiled ->
  run list ->
  Profile.t list

(** {1 Intra-procedural estimates} *)

type intra_kind =
  | Iloop        (** AST walk, branches 50/50 *)
  | Ismart       (** AST walk + branch heuristics *)
  | Imarkov      (** CFG Markov chain *)
  | Istructural  (** CFG-only dominance-based extension *)
  | Icombined    (** Markov chain with Wu-Larus probabilities *)

val intra_kind_to_string : intra_kind -> string
val intra_kind_of_string : string -> intra_kind option

(** Every intra kind, in the fixed presentation order. *)
val all_intra_kinds : intra_kind list

(** The block-frequency estimate of a single function — the unit of
    work the incremental store caches. {!intra_table} is one call per
    defined function, routed through {!intra_cache_hook}. *)
val intra_freqs_fn : compiled -> intra_kind -> Cfg.fn -> float array

(** Per-function caching hook, a pass-through by default.
    [Driver.Incr.install] replaces it so every intra sweep in the
    process is served from the content-addressed store (Core cannot
    depend on Driver, hence the injection point). A replacement must
    return either [compute ()] or a bit-identical earlier return of an
    equivalent computation. *)
val intra_cache_hook :
  (compiled -> intra_kind -> Cfg.fn -> (unit -> float array) -> float array)
  ref

(** Per-function block-frequency arrays for every defined function. *)
val intra_table : compiled -> intra_kind -> (string, float array) Hashtbl.t

(** As {!intra_table}, memoized behind a lookup function. *)
val intra_provider : compiled -> intra_kind -> string -> float array

(** A profile's block counts viewed as an intra estimate (the metric's
    profiling column). *)
val intra_of_profile : Profile.t -> string -> float array

(** Invocation-weighted per-function weight-matching score against one
    profile (the Figure 4 metric). *)
val intra_score :
  compiled ->
  estimate:(string -> float array) ->
  Profile.t ->
  cutoff:float ->
  float

(** {1 Inter-procedural estimates} *)

type inter_kind = Isimple of Inter_simple.kind | Imarkov_inter

val inter_kind_to_string : inter_kind -> string

(** Estimated invocation counts in call-graph node order. *)
val inter_estimate :
  compiled -> intra:(string -> float array) -> inter_kind -> float array

(** Measured invocation counts, same order. *)
val inter_actual : compiled -> Profile.t -> float array

val inter_score :
  estimate:float array -> actual:float array -> cutoff:float -> float

(** {1 Call-site ranking} *)

(** Estimated direct-call-site frequencies in {!Cfg.direct_sites} order. *)
val callsite_estimate :
  compiled -> intra:(string -> float array) -> inter_kind -> float array

val callsite_actual : compiled -> Profile.t -> float array

(** {1 Cross-validation protocol} *)

(** Mean score of a fixed estimate against each profile. *)
val mean_over_profiles : Profile.t list -> (Profile.t -> float) -> float

(** Mean score of profiling-as-estimate: each profile is evaluated against
    the aggregate of the others (or itself, if it is the only one). *)
val cross_profile_mean :
  compiled ->
  Profile.t list ->
  (train:Profile.t -> eval_p:Profile.t -> float) ->
  float

(** {1 The Figure 10 cost model} *)

(** Static cost per block: one unit plus one per expression node. *)
val block_costs : Cfg.fn -> float array

(** Cost factor of blocks in "optimized" functions (0.5 ~ -O2 on
    compress-like integer code). *)
val optimized_cost_factor : float

(** Modelled run time of [profile] when [optimized] functions are compiled
    with optimization. *)
val modelled_time : compiled -> Profile.t -> optimized:string list -> float
