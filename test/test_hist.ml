(* The telemetry plane's histograms and the metric-name registry:

   - pinned bucket boundaries: the HDR-style log-linear bucketing is
     pure integer arithmetic, so exact edge values land in exactly the
     bucket whose lower edge they are — pinned here so a refactor that
     shifts an edge by one fails loudly;
   - qcheck properties: [merge] is associative and commutative with
     [empty] as identity (the serve daemon merges per-shard histograms
     in whatever order replies arrive), [quantile] is monotone in [q],
     and [of_json] inverts [to_json];
   - recording through the domain pool at jobs 1 and jobs 4 yields
     bit-identical snapshots: bucket counts are order-independent and
     the sum is exact integer arithmetic in float;
   - the registry: a full chaos suite run with probes on emits only
     metric names that [Obs.Registry] documents, so DESIGN.md's table
     cannot silently drift from the code. *)

module Hist = Obs.Hist
module Probe = Obs.Probe
module Registry = Obs.Registry
module Inject = Obs.Inject
module Parallel = Driver.Parallel
module Context = Driver.Context
module Experiments = Driver.Experiments
module Fault = Driver.Fault

let snapshot_of_values (vs : int list) : Hist.snapshot =
  let h = Hist.create () in
  List.iter (Hist.record h) vs;
  Hist.snapshot h

(* --- pinned bucket boundaries ----------------------------------------- *)

let test_bucket_boundaries () =
  (* unit buckets below sub_count *)
  for v = 0 to Hist.sub_count - 1 do
    Alcotest.(check int)
      (Printf.sprintf "value %d gets a unit bucket" v)
      v (Hist.bucket_of_value v)
  done;
  (* pinned (value, bucket) pairs across several octaves *)
  List.iter
    (fun (v, b) ->
      Alcotest.(check int)
        (Printf.sprintf "bucket_of_value %d" v)
        b (Hist.bucket_of_value v))
    [ (32, 32); (33, 33); (63, 63);    (* first split octave: width 1 *)
      (64, 64); (65, 64); (66, 65);    (* width-2 octave *)
      (95, 79); (96, 80); (127, 95);
      (128, 96); (255, 127);           (* width-4 octave ends at 127 *)
      (1024, 192); (1055, 192); (1056, 193);
      (1_000_000_000, 827) ];          (* ~1s in ns: msb 29, sub 27 *)
  (* exact edges are their own lower bounds, and round-tripping is
     exact: the lower edge of a value's bucket never exceeds it *)
  List.iter
    (fun v ->
      let b = Hist.bucket_of_value v in
      Alcotest.(check bool)
        (Printf.sprintf "bucket_lower (bucket %d) <= %d" b v)
        true
        (Hist.bucket_lower b <= v);
      Alcotest.(check int)
        (Printf.sprintf "bucket_lower %d round-trips" b)
        b
        (Hist.bucket_of_value (Hist.bucket_lower b)))
    [ 0; 1; 31; 32; 33; 63; 64; 96; 127; 128; 1023; 1024; 1025; 65_535;
      65_536; 1_000_000; 123_456_789; max_int ];
  Alcotest.(check int) "negative values clamp to bucket 0" 0
    (Hist.bucket_of_value (-5));
  Alcotest.(check int) "bucket table is fixed-size" 1856 Hist.bucket_count

(* --- qcheck properties ------------------------------------------------ *)

let gen_values = QCheck.(list_of_size Gen.(0 -- 50) small_nat)

let gen_values_big =
  QCheck.(list_of_size Gen.(0 -- 50) (int_bound 2_000_000_000))

let prop_merge_associative =
  QCheck.Test.make ~count:200 ~name:"merge is associative and commutative"
    QCheck.(triple gen_values gen_values_big gen_values)
    (fun (a, b, c) ->
      let sa = snapshot_of_values a
      and sb = snapshot_of_values b
      and sc = snapshot_of_values c in
      Hist.merge (Hist.merge sa sb) sc = Hist.merge sa (Hist.merge sb sc)
      && Hist.merge sa sb = Hist.merge sb sa
      && Hist.merge Hist.empty sa = sa
      && Hist.merge sa Hist.empty = sa)

let prop_quantile_monotone =
  QCheck.Test.make ~count:200 ~name:"quantile is monotone in q"
    QCheck.(
      triple
        (list_of_size Gen.(1 -- 60) (int_bound 10_000_000))
        (int_bound 1000) (int_bound 1000))
    (fun (vs, a, b) ->
      let s = snapshot_of_values vs in
      let q1 = float_of_int (min a b) /. 1000.0
      and q2 = float_of_int (max a b) /. 1000.0 in
      Hist.quantile s q1 <= Hist.quantile s q2)

let prop_json_roundtrip =
  QCheck.Test.make ~count:200 ~name:"of_json inverts to_json"
    gen_values_big
    (fun vs ->
      let s = snapshot_of_values vs in
      Hist.of_json (Hist.to_json s) = Some s)

(* --- quantiles against a known multiset ------------------------------- *)

let test_quantile_exact () =
  (* 100 observations of 1..100: values up to 63 are in exact (width-1)
     buckets, 64..100 in width-2 buckets, so the ranked value comes
     back either exactly or as the even lower edge one below it *)
  let s = snapshot_of_values (List.init 100 (fun i -> i + 1)) in
  Alcotest.(check (float 0.0)) "p50 of 1..100" 50.0 (Hist.quantile s 0.5);
  Alcotest.(check (float 0.0)) "p90 of 1..100" 90.0 (Hist.quantile s 0.9);
  (* rank 99 -> value 99, which shares bucket [98, 99] *)
  Alcotest.(check (float 0.0)) "p99 of 1..100" 98.0 (Hist.quantile s 0.99);
  Alcotest.(check (float 0.0)) "p0 clamps to rank 1" 1.0
    (Hist.quantile s 0.0);
  Alcotest.(check (float 0.0)) "p100 is the max" 100.0
    (Hist.quantile s 1.0);
  Alcotest.(check bool) "empty snapshot has nan quantiles" true
    (Float.is_nan (Hist.quantile Hist.empty 0.5))

(* --- bit-identical snapshots through the pool ------------------------- *)

let pool_values = List.init 300 (fun i -> i * 7919 mod 1_000_000)

let record_via_pool (jobs : int) : Hist.snapshot =
  Hist.reset ();
  Probe.set_enabled true;
  Parallel.set_jobs jobs;
  Fun.protect
    ~finally:(fun () ->
      Parallel.set_jobs 1;
      Probe.set_enabled false)
    (fun () ->
      ignore
        (Parallel.map (fun v -> Hist.observe "test.pool.values" v) pool_values);
      match List.assoc_opt "test.pool.values" (Hist.all ()) with
      | Some s -> s
      | None -> Alcotest.fail "pooled recording produced no histogram")

let test_pool_deterministic () =
  let s1 = record_via_pool 1 in
  let s4 = record_via_pool 4 in
  Hist.reset ();
  Alcotest.(check bool) "jobs 1 and jobs 4 snapshots are bit-identical"
    true (s1 = s4);
  Alcotest.(check string) "identical wire JSON too"
    (Obs.Json.to_compact_string (Hist.summary_json s1))
    (Obs.Json.to_compact_string (Hist.summary_json s4));
  Alcotest.(check int) "every recording landed" (List.length pool_values)
    s1.Hist.h_count

(* --- the registry covers everything a chaos suite run emits ----------- *)

let test_registry_covers_chaos_run () =
  Inject.disarm_all ();
  Fault.reset ();
  Context.clear ();
  Probe.reset ();
  Hist.reset ();
  Probe.set_enabled true;
  Parallel.set_jobs 2;
  Fun.protect
    ~finally:(fun () ->
      Inject.disarm_all ();
      Fault.reset ();
      Context.clear ();
      Probe.set_enabled false;
      Probe.reset ();
      Hist.reset ();
      Parallel.set_jobs 1)
    (fun () ->
      Fault.arm_chaos ~seed:20260808 ();
      (* the full experiment battery: compiles and profiles the whole
         program suite, runs every solver and estimator family *)
      List.iter (fun (_, _, f) -> ignore (f ())) Experiments.all;
      (* the incremental layer too (store-less analyze still counts) *)
      Inject.disarm_all ();
      ignore
        (Driver.Incr.analyze ~name:"hist_registry_probe"
           "int main() { return 0; }");
      let check kind name =
        Alcotest.(check bool)
          (Printf.sprintf "%s %s is registered"
             (Registry.kind_to_string kind) name)
          true
          (Registry.registered kind name)
      in
      List.iter (fun (n, _) -> check Registry.Counter n) (Probe.counters ());
      List.iter (fun (n, _) -> check Registry.Gauge n) (Probe.gauges ());
      List.iter (fun (n, _) -> check Registry.Hist n) (Hist.all ());
      (* the run actually emitted something in each kind *)
      Alcotest.(check bool) "chaos run emitted counters" true
        (Probe.counters () <> []);
      Alcotest.(check bool) "chaos run emitted histograms" true
        (Hist.all () <> []))

let suite =
  [ Alcotest.test_case "pinned bucket boundaries" `Quick
      test_bucket_boundaries;
    QCheck_alcotest.to_alcotest prop_merge_associative;
    QCheck_alcotest.to_alcotest prop_quantile_monotone;
    QCheck_alcotest.to_alcotest prop_json_roundtrip;
    Alcotest.test_case "exact quantiles on a unit-bucket multiset" `Quick
      test_quantile_exact;
    Alcotest.test_case "pool recording: jobs 1 = jobs 4, bit-identical"
      `Quick test_pool_deterministic;
    Alcotest.test_case "registry covers a full chaos suite run" `Quick
      test_registry_covers_chaos_run ]
