(* Typed score records — the result-level observability layer.

   Every number the experiment suite prints (weight-matching scores,
   miss rates, modelled speedups, worked-example frequencies) is first
   computed into one of these records; the text tables are rendered
   *from* the records and the [record]/[diff] subcommands persist them
   as a run record and compare them against the committed baseline.

   A record is keyed by
     experiment × program × estimator × metric × parameter
   where [parameter] is the metric's numeric knob — the weight-matching
   q-cutoff for the matching metrics, the optimized-function count for
   fig10's speedups, 0 where not applicable. Keys are unique within one
   evaluation run; [all] returns records sorted by key so consumers see
   a deterministic stream whatever domain emitted them.

   Thread model: one mutex-protected list. Emission happens both from
   the sequential merge phase of the experiments and from inside
   [Parallel] tasks (per-program rows); record *order* is therefore
   scheduling-dependent and only the sorted view is exposed. *)

type metric =
  | Wm_intra      (* intra-procedural block weight matching *)
  | Wm_inter      (* function-invocation weight matching *)
  | Wm_callsite   (* call-site ranking weight matching *)
  | Miss_rate     (* branch misprediction rate *)
  | Speedup       (* fig10 modelled speedup *)
  | Freq          (* an estimated or measured frequency *)
  | Count         (* a static inventory count (table1) *)

let metric_to_string = function
  | Wm_intra -> "wm_intra"
  | Wm_inter -> "wm_inter"
  | Wm_callsite -> "wm_callsite"
  | Miss_rate -> "miss_rate"
  | Speedup -> "speedup"
  | Freq -> "freq"
  | Count -> "count"

let metric_of_string = function
  | "wm_intra" -> Some Wm_intra
  | "wm_inter" -> Some Wm_inter
  | "wm_callsite" -> Some Wm_callsite
  | "miss_rate" -> Some Miss_rate
  | "speedup" -> Some Speedup
  | "freq" -> Some Freq
  | "count" -> Some Count
  | _ -> None

let all_metrics =
  [ Wm_intra; Wm_inter; Wm_callsite; Miss_rate; Speedup; Freq; Count ]

type t = {
  s_experiment : string;  (* "fig4", "ablation_loop_count", ... *)
  s_program : string;     (* suite program, or "AVERAGE" for suite means *)
  s_estimator : string;   (* column label; "row/col" for ablation cells *)
  s_metric : metric;
  s_param : float;        (* q-cutoff / #optimized / 0 when n/a *)
  s_value : float;
}

(* The average pseudo-program of per-program tables. *)
let average_program = "AVERAGE"

type key = string * string * string * string * float

let key (s : t) : key =
  (s.s_experiment, s.s_program, s.s_estimator, metric_to_string s.s_metric,
   s.s_param)

let key_to_string ((e, p, est, m, c) : key) : string =
  Printf.sprintf "%s/%s/%s/%s@%g" e p est m c

(* ------------------------------------------------------------------ *)

let m = Mutex.create ()
let store : t list ref = ref []

let emit (s : t) : unit =
  Mutex.lock m;
  store := s :: !store;
  Mutex.unlock m

let reset () : unit =
  Mutex.lock m;
  store := [];
  Mutex.unlock m

(* Sorted, deduplicated view: re-running an experiment in the same
   process (tests, the bench harness running [run_all] after a single
   experiment) re-emits identical records; keep one per key. *)
let all () : t list =
  Mutex.lock m;
  let records = !store in
  Mutex.unlock m;
  let sorted = List.sort (fun a b -> compare (key a) (key b)) records in
  let rec dedupe = function
    | a :: (b :: _ as rest) when key a = key b -> dedupe rest
    | a :: rest -> a :: dedupe rest
    | [] -> []
  in
  dedupe sorted

let count () : int = List.length (all ())
