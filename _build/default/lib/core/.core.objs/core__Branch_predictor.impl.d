lib/core/branch_predictor.ml: Cfg_ir Cfront Config List Loop_model Option
