lib/core/branch_predictor.mli: Cfg_ir Cfront
