(* The fault-tolerance layer, exercised through deterministic fault
   injection ([Obs.Inject] armed via [Driver.Fault]):

   - each registered injection point, armed in turn (and several at
     once), at jobs 1 and jobs 4: the suite completes, degraded rows are
     annotated, recoverable stages record their recovery, and the exit
     code reflects the degradation;
   - chaos mode: the same seed produces the identical degradation
     pattern and identical rendered output at any jobs setting;
   - the byte-identity guarantee: with injection disarmed, output is
     byte-identical to a run where the machinery was never touched;
   - the [Context] cache under faults: strict mode abandons the key so
     a fail-once loader succeeds on retry; degrade mode publishes the
     fault entry so waiters never recompute;
   - a qcheck fuzz property: [Pipeline.compile] is total over arbitrary
     bytes and mutated suite sources — only the documented front-end
     taxonomy escapes. *)

module Parallel = Driver.Parallel
module Context = Driver.Context
module Experiments = Driver.Experiments
module Fault = Driver.Fault
module Inject = Obs.Inject
module Pipeline = Core.Pipeline

let contains (haystack : string) (needle : string) : bool =
  let h = String.length haystack and n = String.length needle in
  let rec at i = i + n <= h && (String.sub haystack i n = needle || at (i + 1)) in
  at 0

(* Every test starts from — and restores — a fully idle process: no
   arming, no recorded faults, sequential pool, cold cache, degrade
   mode. The rest of the alcotest binary must never see fault state. *)
let pristine () =
  Inject.disarm_all ();
  Fault.reset ();
  Fault.set_strict false;
  Context.clear ();
  Parallel.set_jobs 1

let shielded (f : unit -> unit) () =
  pristine ();
  Fun.protect ~finally:pristine f

let run_exp (id : string) : string =
  match Experiments.find id with
  | Some f -> f ()
  | None -> Alcotest.failf "unknown experiment %s" id

let bench_name (b : Suite.Bench_prog.t) = b.Suite.Bench_prog.name

(* --- registry --------------------------------------------------------- *)

let test_registry () =
  List.iter
    (fun p ->
      Alcotest.(check bool)
        (Printf.sprintf "%s is registered" p)
        true
        (List.mem p (Inject.registered ())))
    Fault.injection_points;
  Alcotest.(check bool) "registry idle by default" false (Inject.armed ())

(* --- every injection point, in turn ----------------------------------- *)

(* One warm pass with the program-stage points armed on distinct
   programs, then the solver/estimator/worker points against the warmed
   cache. Run at jobs 1 and jobs 4: the degradation semantics must not
   depend on the pool. *)
let exercise_points (jobs : int) () =
  Parallel.set_jobs jobs;

  (* compile / profile / profile.fuel — armed together, one suite pass *)
  Inject.arm ~key:"queens_mini" "compile";
  Inject.arm ~key:"tree_mini" "profile";
  Inject.arm ~key:"life_mini" "profile.fuel";
  let entries = Context.all_entries () in
  Alcotest.(check int) "every program reported"
    (List.length Suite.Registry.all)
    (List.length entries);
  List.iter
    (fun (b, e) ->
      match (bench_name b, e) with
      | "queens_mini", Error f ->
        Alcotest.(check string) "queens_mini degrades at compile" "compile"
          (Fault.stage_to_string f.Fault.f_stage)
      | "tree_mini", Error f ->
        Alcotest.(check string) "tree_mini degrades at profile" "profile"
          (Fault.stage_to_string f.Fault.f_stage)
      | (("queens_mini" | "tree_mini") as n), Ok _ ->
        Alcotest.failf "%s should have degraded" n
      | _, Ok _ -> ()
      | n, Error f ->
        Alcotest.failf "%s unexpectedly degraded (%s)" n f.Fault.f_exn)
    entries;
  (* budget exhaustion is recoverable: life_mini keeps its (partial)
     profiles and stays healthy, but the recovery is on the record *)
  Alcotest.(check bool) "partial profiles recorded as faults" true
    (List.exists
       (fun (f : Fault.t) ->
         f.Fault.f_subject = "life_mini"
         && f.Fault.f_recovery = "kept partial profile")
       (Fault.sorted ()));
  Alcotest.(check int) "degraded run exits 3" Fault.degraded_exit_code
    (Fault.exit_code ());
  let t1 = run_exp "table1" in
  Alcotest.(check bool) "degraded row is annotated" true
    (contains t1 "queens_mini \xe2\x80\xa0");
  Alcotest.(check bool) "degradation note names the stage" true
    (contains t1 "degraded at the compile stage");
  Alcotest.(check bool) "healthy rows still render" true
    (contains t1 "lisp_mini");

  (* solve.intra — the Markov chain collapses to the loop fallback; the
     figure still renders every row *)
  Inject.disarm_all ();
  Fault.reset ();
  Inject.arm "solve.intra";
  let f4 = run_exp "fig4" in
  Alcotest.(check bool) "fig4 completes on the fallback chain" true
    (not (contains f4 "DEGRADED"));
  Alcotest.(check bool) "intra fallbacks recorded" true (Fault.count () > 0);

  (* solve.inter — degradation chain ends in the call-site estimate *)
  Inject.disarm_all ();
  Fault.reset ();
  Inject.arm "solve.inter";
  let d = Context.by_name "compress_mini" in
  let intra = Pipeline.intra_provider d.Context.compiled Pipeline.Ismart in
  let est =
    Pipeline.inter_estimate d.Context.compiled ~intra Pipeline.Imarkov_inter
  in
  Alcotest.(check bool) "fallback estimate is finite and usable" true
    (Array.length est > 0
    && Array.for_all (fun v -> Float.is_finite v && v >= 0.0) est);
  Alcotest.(check bool) "inter fallback recorded" true (Fault.count () > 0);

  (* estimate — an estimator-table failure degrades one experiment to a
     notice, not the process *)
  Inject.disarm_all ();
  Fault.reset ();
  Inject.arm ~key:"hash_mini" "estimate";
  let f4 = run_exp "fig4" in
  Alcotest.(check bool) "experiment degrades to a notice" true
    (contains f4 "DEGRADED");
  Alcotest.(check int) "estimator fault exits 3" Fault.degraded_exit_code
    (Fault.exit_code ());

  (* worker — a pool task dying outside every inner capture *)
  Inject.disarm_all ();
  Fault.reset ();
  Inject.arm ~key:"0" "worker";
  let t1 = run_exp "table1" in
  Alcotest.(check bool) "worker death degrades the experiment" true
    (contains t1 "DEGRADED")

(* --- chaos mode ------------------------------------------------------- *)

let chaos_pattern (jobs : int) (seed : int) :
    (string * string) list * string =
  pristine ();
  Parallel.set_jobs jobs;
  Fault.arm_chaos ~seed ();
  let pattern =
    List.map
      (fun (b, e) ->
        ( bench_name b,
          match e with
          | Ok _ -> "ok"
          | Error f -> Fault.stage_to_string f.Fault.f_stage ))
      (Context.all_entries ())
  in
  let rendered = run_exp "table1" in
  Inject.disarm_all ();
  (pattern, rendered)

let test_chaos_deterministic () =
  let seed = 424242 in
  let p1, t1 = chaos_pattern 1 seed in
  let p4, t4 = chaos_pattern 4 seed in
  Alcotest.(check (list (pair string string)))
    "same seed, same degradation pattern at jobs 1 and 4" p1 p4;
  Alcotest.(check string) "same seed, same rendered output" t1 t4;
  Alcotest.(check bool) "the chaos run degraded something" true
    (List.exists (fun (_, s) -> s <> "ok") p1)

(* --- byte-identity with injection disabled ---------------------------- *)

let test_disarmed_byte_identity () =
  let render () = run_exp "table1" ^ "\n" ^ run_exp "fig2" in
  let before = render () in
  Alcotest.(check int) "healthy run exits 0" 0 (Fault.exit_code ());
  (* arm the whole registry, then disarm: the machinery must leave no
     residue in the output *)
  Fault.arm_chaos ~seed:7 ();
  Inject.disarm_all ();
  Fault.reset ();
  Context.clear ();
  let after = render () in
  Alcotest.(check string)
    "disabled injection leaves the output byte-identical" before after;
  Alcotest.(check int) "still healthy" 0 (Fault.exit_code ())

(* --- the cache under faults ------------------------------------------- *)

(* Strict mode abandons the computing key on failure: a loader that
   fails once (count-limited injection) then succeeds must succeed on
   retry — the cache is never poisoned. *)
let test_strict_abandons_key () =
  Fault.set_strict true;
  Inject.arm ~key:"queens_mini" ~count:1 "compile";
  (match Context.by_name "queens_mini" with
  | _ -> Alcotest.fail "strict mode must re-raise the injected fault"
  | exception Inject.Injected ("compile", "queens_mini") -> ()
  | exception e -> Alcotest.failf "unexpected %s" (Printexc.to_string e));
  let d = Context.by_name "queens_mini" in
  Alcotest.(check string) "retry recomputes and succeeds" "queens_mini"
    (bench_name d.Context.bench)

(* Degrade mode publishes the fault as the entry: the injection is
   exhausted after one firing, so a recompute would succeed — a second
   lookup must still observe the *published* fault, proving waiters are
   served the entry instead of recomputing. *)
let test_degrade_publishes_fault () =
  Inject.arm ~key:"queens_mini" ~count:1 "compile";
  (match Context.by_name "queens_mini" with
  | _ -> Alcotest.fail "expected a degraded program"
  | exception Fault.Degraded f ->
    Alcotest.(check string) "fault carries the stage" "compile"
      (Fault.stage_to_string f.Fault.f_stage));
  (match Context.by_name "queens_mini" with
  | _ -> Alcotest.fail "cache recomputed instead of serving the fault"
  | exception Fault.Degraded _ -> ());
  Alcotest.(check int) "degraded exit code" Fault.degraded_exit_code
    (Fault.exit_code ())

(* --- fuzz: the compile front end is total ----------------------------- *)

(* The documented compile-stage taxonomy. Anything else escaping
   [Pipeline.compile] is a front-end crash. *)
let documented_escape = function
  | Cfront.Preproc.Error _ | Cfront.Lexer.Error _ | Cfront.Parser.Error _
  | Cfront.Typecheck.Error _ | Cfront.Ctypes.Type_error _
  | Cfg_ir.Build.Error _ ->
    true
  | _ -> false

let gen_compile_input : string QCheck.arbitrary =
  let open QCheck.Gen in
  let raw = string_size ~gen:char (int_bound 400) in
  let sources =
    List.map (fun b -> b.Suite.Bench_prog.source) Suite.Registry.all
  in
  let mutated =
    oneofl sources >>= fun src ->
    let n = String.length src in
    frequency
      [ ( 2,
          (* delete a slice *)
          int_bound (n - 1) >>= fun i ->
          int_bound (n - i) >|= fun len ->
          String.sub src 0 i ^ String.sub src (i + len) (n - i - len) );
        ( 2,
          (* overwrite one byte *)
          int_bound (n - 1) >>= fun i ->
          char >|= fun c ->
          String.mapi (fun j x -> if j = i then c else x) src );
        ( 1,
          (* insert a confusing token *)
          int_bound n >>= fun i ->
          oneofl
            [ "}"; "{"; "*"; ";"; "int"; "else"; "\""; "/*"; "0x"; "(";
              "case"; "#" ]
          >|= fun tok -> String.sub src 0 i ^ tok ^ String.sub src i (n - i)
        ) ]
  in
  QCheck.make
    ~print:(Printf.sprintf "%S")
    (frequency [ (1, raw); (3, mutated) ])

let prop_compile_total =
  QCheck.Test.make
    ~name:
      "Pipeline.compile is total over junk — only the documented \
       taxonomy escapes"
    ~count:300 gen_compile_input (fun src ->
      match Pipeline.compile ~name:"fuzz" src with
      | _ -> true
      | exception e ->
        if documented_escape e then true
        else
          QCheck.Test.fail_reportf "undocumented escape: %s"
            (Printexc.to_string e))

(* ---------------------------------------------------------------------- *)

let suite =
  [ Alcotest.test_case "every point is registered" `Quick
      (shielded test_registry);
    Alcotest.test_case "each injection point in turn, jobs 1" `Slow
      (shielded (exercise_points 1));
    Alcotest.test_case "each injection point in turn, jobs 4" `Slow
      (shielded (exercise_points 4));
    Alcotest.test_case "chaos: same seed, same degradation at any jobs"
      `Slow
      (shielded test_chaos_deterministic);
    Alcotest.test_case "disarmed injection is byte-invisible" `Slow
      (shielded test_disarmed_byte_identity);
    Alcotest.test_case "strict mode leaves the cache retryable" `Quick
      (shielded test_strict_abandons_key);
    Alcotest.test_case "degrade mode publishes the fault entry" `Quick
      (shielded test_degrade_publishes_fault);
    QCheck_alcotest.to_alcotest
      ~rand:(Random.State.make [| 0xfa017 |])
      prop_compile_total ]
