(* One reproduction per table/figure of the paper's evaluation. Each
   experiment renders the same rows/series the paper reports, from the
   shared compiled-and-profiled suite in [Context].

   Result-level observability: every number an experiment prints is
   first computed into a typed [Score] record
   (experiment × program × estimator × metric × parameter → value) and
   the text tables are rendered *from* those records — the rendering is
   a pure function of the record stream, so the [record]/[diff]
   subcommands can persist a run and gate refactors on score drift
   without touching the tables. The full-suite text output is
   byte-identical to the pre-record rendering. *)

module Ast = Cfront.Ast
module Pretty = Cfront.Pretty
module Cfg = Cfg_ir.Cfg
module Callgraph = Cfg_ir.Callgraph
module Profile = Cinterp.Profile
module Pipeline = Core.Pipeline
module Ast_estimator = Core.Ast_estimator
module Markov_intra = Core.Markov_intra
module Markov_inter = Core.Markov_inter
module Inter_simple = Core.Inter_simple
module Missrate = Core.Missrate
module Weight_matching = Core.Weight_matching

let bprintf = Printf.bprintf

(* Fan a per-program computation across the [Parallel] pool. Results
   come back in registry order whatever the jobs setting, so every
   table below renders byte-identically to its sequential form; tasks
   only read shared state (see the contract in [Parallel]). Only the
   healthy subset of the suite flows through here, so averages and
   series skip degraded programs. *)
let suite_map (f : Context.prog_data -> 'a) : 'a list =
  Parallel.map f (Context.all ())

(* Per-program table rows over the *whole* registry: [f] renders a row
   for each healthy program (in parallel; [None] drops the program, as
   fig9 does for programs without call sites) and every degraded
   program renders a dagger-marked placeholder row padded to [width]
   columns, so a failing program stays visible in every table instead
   of silently vanishing. With no faults this is exactly the old
   healthy-row list — byte-identical output. *)
let suite_rows ~(width : int) (f : Context.prog_data -> string list option) :
    string list list =
  Context.all_entries ()
  |> Parallel.map (fun ((b : Suite.Bench_prog.t), entry) ->
       match entry with
       | Ok d -> f d
       | Error (_ : Fault.t) ->
         Some
           ((b.Suite.Bench_prog.name ^ " †")
            :: List.init (width - 1) (fun _ -> "—")))
  |> List.filter_map Fun.id

(* The footnote explaining the daggers; "" when the suite is healthy. *)
let degraded_note () : string =
  match Context.degraded () with
  | [] -> ""
  | faults ->
    "\n"
    ^ String.concat ""
        (List.map
           (fun (name, (f : Fault.t)) ->
             Printf.sprintf "† %s degraded at the %s stage: %s\n" name
               (Fault.stage_to_string f.Fault.f_stage)
               (if f.Fault.f_exn <> "" then f.Fault.f_exn
                else f.Fault.f_detail))
           faults)

(* ------------------------------------------------------------------ *)
(* The paper's running example, used by table2 / fig3 / fig6_7. *)

let strchr_source = {|
/* Find first occurrence of a character in a string. */
char *strchr(char *str, int c) {
  while (*str) {
    if (*str == c) return str;
    str++;
  }
  return NULL;
}

int main(void) {
  strchr("abc", 'a');
  strchr("abc", 'b');
  return 0;
}
|}

(* The [Score.s_program] of the worked example's records. *)
let strchr_program = "strchr_example"

let strchr_compiled () = Pipeline.compile ~name:strchr_program strchr_source

(* Short description of a block from its contents. *)
let block_label (fn : Cfg.fn) (b : Cfg.block) : string =
  match b.Cfg.b_term with
  | Cfg.Tbranch (br, _, _) -> begin
    match br.Cfg.br_kind with
    | Cfg.Kwhile -> "while"
    | Cfg.Kdo -> "do-while"
    | Cfg.Kfor -> "for"
    | Cfg.Kif | Cfg.Kcond -> "if"
  end
  | Cfg.Treturn _ when b.Cfg.b_instrs = [] -> "return"
  | _ ->
    (match b.Cfg.b_instrs with
    | Cfg.Iexpr e :: _ -> Pretty.expr_to_string e
    | Cfg.Ilocal_init (_, d) :: _ -> d.Ast.d_name ^ "=init"
    | [] -> Printf.sprintf "B%d" b.Cfg.b_id)
    |> fun s -> if fn.Cfg.fn_entry = b.Cfg.b_id then s else s

(* ------------------------------------------------------------------ *)
(* Scoring helpers shared by figures 4, 5 and 9. *)

(* Mean (over profiles) of the invocation-weighted intra score of a fixed
   estimate. *)
let intra_static_score (d : Context.prog_data) ~(cutoff : float)
    (kind : Pipeline.intra_kind) : float =
  let estimate = Pipeline.intra_provider d.Context.compiled kind in
  Pipeline.mean_over_profiles d.Context.profiles (fun p ->
      Pipeline.intra_score d.Context.compiled ~estimate p ~cutoff)

let intra_profiling_score (d : Context.prog_data) ~(cutoff : float) : float =
  Pipeline.cross_profile_mean d.Context.compiled d.Context.profiles
    (fun ~train ~eval_p ->
      Pipeline.intra_score d.Context.compiled
        ~estimate:(Pipeline.intra_of_profile train)
        eval_p ~cutoff)

(* The smart intra estimates feed every inter-procedural model (paper:
   "All estimates are built on the smart intra-procedural estimator"). *)
let smart_intra (d : Context.prog_data) : string -> float array =
  Pipeline.intra_provider d.Context.compiled Pipeline.Ismart

let inter_static_score (d : Context.prog_data) ~(cutoff : float)
    (kind : Pipeline.inter_kind) : float =
  let estimate =
    Pipeline.inter_estimate d.Context.compiled ~intra:(smart_intra d) kind
  in
  Pipeline.mean_over_profiles d.Context.profiles (fun p ->
      Weight_matching.score ~estimate
        ~actual:(Pipeline.inter_actual d.Context.compiled p)
        ~cutoff)

let inter_profiling_score (d : Context.prog_data) ~(cutoff : float) : float =
  Pipeline.cross_profile_mean d.Context.compiled d.Context.profiles
    (fun ~train ~eval_p ->
      Weight_matching.score
        ~estimate:(Pipeline.inter_actual d.Context.compiled train)
        ~actual:(Pipeline.inter_actual d.Context.compiled eval_p)
        ~cutoff)

let callsite_static_score (d : Context.prog_data) ~(cutoff : float)
    (kind : Pipeline.inter_kind) : float =
  let estimate =
    Pipeline.callsite_estimate d.Context.compiled ~intra:(smart_intra d) kind
  in
  Pipeline.mean_over_profiles d.Context.profiles (fun p ->
      Weight_matching.score ~estimate
        ~actual:(Pipeline.callsite_actual d.Context.compiled p)
        ~cutoff)

let callsite_profiling_score (d : Context.prog_data) ~(cutoff : float) :
    float =
  Pipeline.cross_profile_mean d.Context.compiled d.Context.profiles
    (fun ~train ~eval_p ->
      Weight_matching.score
        ~estimate:(Pipeline.callsite_actual d.Context.compiled train)
        ~actual:(Pipeline.callsite_actual d.Context.compiled eval_p)
        ~cutoff)

(* The mean of an empty series used to be a plausible-looking [0.0] — an
   all-degraded suite would quietly report a zero score. [Stats] owns
   the convention now (fault on the record so the run exits 3, NaN
   renders as an explicit marker); these aliases keep every call site
   below unchanged. *)
let mean_opt = Stats.mean_opt
let mean (xs : float list) : float = Stats.mean xs

(* ------------------------------------------------------------------ *)
(* The typed-record layer: per-program score tables compute every cell
   into a [Score] record once — one parallel task per program evaluates
   all columns — and both the rows and the AVERAGE line render from
   those records. *)

let emit ~(exp : string) ~(program : string) ~(estimator : string)
    ?(param = 0.0) (metric : Score.metric) (value : float) : unit =
  Score.emit
    { Score.s_experiment = exp; s_program = program; s_estimator = estimator;
      s_metric = metric; s_param = param; s_value = value }

(* A column of a per-program score table: the estimator label recorded,
   the metric and its parameter (q-cutoff), and the per-program value. *)
type score_col = {
  c_estimator : string;
  c_metric : Score.metric;
  c_param : float;
  c_value : Context.prog_data -> float;
}

let col ?(param = 0.0) (estimator : string) (metric : Score.metric)
    (value : Context.prog_data -> float) : score_col =
  { c_estimator = estimator; c_metric = metric; c_param = param;
    c_value = value }

(* Compute a per-program score table for [exp_id]. Healthy programs
   passing [keep] get every column evaluated in one parallel task (and
   one record emitted per cell); degraded programs render the
   dagger-marked placeholder row. Returns the rendered rows (registry
   order) and the AVERAGE row over the kept healthy programs; an
   average over *no* programs renders the — marker and records a fault
   instead of reporting 0. *)
let score_table ~(exp_id : string)
    ?(keep : Context.prog_data -> bool = fun _ -> true)
    ?(fmt : float -> string = Text_table.pct) (cols : score_col list) :
    string list list * string list =
  let width = 1 + List.length cols in
  let computed =
    Context.all_entries ()
    |> Parallel.map (fun ((b : Suite.Bench_prog.t), entry) ->
         match entry with
         | Ok d when keep d ->
           `Scores
             (b.Suite.Bench_prog.name, List.map (fun c -> c.c_value d) cols)
         | Ok _ -> `Skip
         | Error (_ : Fault.t) -> `Degraded b.Suite.Bench_prog.name)
  in
  let rows =
    List.filter_map
      (function
        | `Scores (name, values) ->
          List.iter2
            (fun c v ->
              emit ~exp:exp_id ~program:name ~estimator:c.c_estimator
                ~param:c.c_param c.c_metric v)
            cols values;
          Some (name :: List.map fmt values)
        | `Skip -> None
        | `Degraded name ->
          Some ((name ^ " †") :: List.init (width - 1) (fun _ -> "—")))
      computed
  in
  let healthy =
    List.filter_map
      (function `Scores (_, values) -> Some values | _ -> None)
      computed
  in
  let avg_row =
    Score.average_program
    :: List.mapi
         (fun i c ->
           match mean_opt (List.map (fun vs -> List.nth vs i) healthy) with
           | Some v ->
             emit ~exp:exp_id ~program:Score.average_program
               ~estimator:c.c_estimator ~param:c.c_param c.c_metric v;
             fmt v
           | None ->
             Fault.record
               { Fault.f_stage = Fault.Estimate; f_subject = exp_id;
                 f_detail =
                   Printf.sprintf "average of %s: no healthy programs"
                     c.c_estimator;
                 f_exn = ""; f_backtrace = "";
                 f_recovery = "average rendered as a — marker" };
             "—")
         cols
  in
  (rows, avg_row)

(* ------------------------------------------------------------------ *)
(* Table 1 *)

let table1 () : string =
  let rows =
    suite_rows ~width:7
      (fun (d : Context.prog_data) ->
        let b = d.Context.bench in
        let name = b.Suite.Bench_prog.name in
        let loc = Suite.Bench_prog.loc b in
        let funcs =
          List.length d.Context.compiled.Pipeline.prog.Cfg.prog_fns
        in
        let blocks =
          List.fold_left
            (fun acc fn -> acc + Cfg.n_blocks fn)
            0 d.Context.compiled.Pipeline.prog.Cfg.prog_fns
        in
        let inputs = Suite.Bench_prog.n_runs b in
        List.iter
          (fun (estimator, v) ->
            emit ~exp:"table1" ~program:name ~estimator Score.Count (float_of_int v))
          [ ("lines", loc); ("funcs", funcs); ("blocks", blocks);
            ("inputs", inputs) ];
        Some
          [ name;
            string_of_int loc;
            string_of_int funcs;
            string_of_int blocks;
            string_of_int inputs;
            b.Suite.Bench_prog.analogue;
            b.Suite.Bench_prog.description ])
  in
  "Table 1: programs used in this study\n\n"
  ^ Text_table.render
      ~aligns:[ Text_table.Left; Text_table.Right; Text_table.Right;
                Text_table.Right; Text_table.Right; Text_table.Left;
                Text_table.Left ]
      [ "program"; "lines"; "funcs"; "blocks"; "inputs"; "stands in for";
        "description" ]
      rows
  ^ degraded_note ()

(* ------------------------------------------------------------------ *)
(* Table 2: the strchr weight-matching worked example *)

let table2 () : string =
  let c = strchr_compiled () in
  let fn = Option.get (Cfg.find_fn c.Pipeline.prog "strchr") in
  let estimate = Ast_estimator.block_freqs c.Pipeline.tc fn Ast_estimator.Smart in
  let outcome = Pipeline.run_once c { Pipeline.argv = []; input = "" } in
  let actual = Profile.block_counts outcome.Cinterp.Eval.profile "strchr" in
  let rows =
    Array.to_list fn.Cfg.fn_blocks
    |> List.map (fun (b : Cfg.block) ->
         emit ~exp:"table2" ~program:strchr_program
           ~estimator:(Printf.sprintf "B%d.actual" b.Cfg.b_id)
           Score.Freq actual.(b.Cfg.b_id);
         emit ~exp:"table2" ~program:strchr_program
           ~estimator:(Printf.sprintf "B%d.estimate" b.Cfg.b_id)
           Score.Freq estimate.(b.Cfg.b_id);
         [ block_label fn b;
           Printf.sprintf "%.0f" actual.(b.Cfg.b_id);
           Printf.sprintf "%.1f" estimate.(b.Cfg.b_id) ])
  in
  let wm cutoff =
    let v = Weight_matching.score ~estimate ~actual ~cutoff in
    emit ~exp:"table2" ~program:strchr_program ~estimator:"smart"
      ~param:cutoff Score.Wm_intra v;
    v
  in
  "Table 2: intra-procedural weight-matching for strchr\n"
  ^ "(actual: strchr(\"abc\",'a') and strchr(\"abc\",'b'); estimate: smart)\n\n"
  ^ Text_table.render
      ~aligns:[ Text_table.Left ]
      [ "block"; "actual"; "estimate" ]
      rows
  ^ Printf.sprintf "\nscore at 20%% cutoff: %s   (paper: 100%%)\n"
      (Text_table.pct (wm 0.2))
  ^ Printf.sprintf "score at 60%% cutoff: %s   (paper: 88%%)\n"
      (Text_table.pct (wm 0.6))

(* ------------------------------------------------------------------ *)
(* Figure 2: branch prediction miss rates *)

let fig2 () : string =
  let rows, avg_row =
    score_table ~exp_id:"fig2"
      [ col "predictor" Score.Miss_rate (fun d ->
            let prog = d.Context.compiled.Pipeline.prog in
            let smart = Missrate.smart_predictor prog in
            mean
              (List.map (fun p -> Missrate.rate prog p smart)
                 d.Context.profiles));
        col "profiling" Score.Miss_rate (fun d ->
            Pipeline.cross_profile_mean d.Context.compiled d.Context.profiles
              (fun ~train ~eval_p ->
                Missrate.rate d.Context.compiled.Pipeline.prog eval_p
                  (Missrate.majority_predictor train)));
        col "PSP" Score.Miss_rate (fun d ->
            mean
              (List.map
                 (fun p -> Missrate.psp_rate d.Context.compiled.Pipeline.prog p)
                 d.Context.profiles)) ]
  in
  "Figure 2: dynamic branch misprediction rates\n"
  ^ "(constant-foldable conditions and switches excluded, as in the paper)\n\n"
  ^ Text_table.render
      ~aligns:[ Text_table.Left ]
      [ "program"; "predictor"; "profiling"; "PSP" ]
      (rows @ [ avg_row ])
  ^ "\npaper: predictor ~2x the profiling miss rate; PSP lowest.\n"
  ^ degraded_note ()

(* ------------------------------------------------------------------ *)
(* Figure 3: the annotated AST of strchr *)

let fig3 () : string =
  let c = strchr_compiled () in
  let fi = Option.get (Cfront.Typecheck.fun_info c.Pipeline.tc "strchr") in
  let f = fi.Cfront.Typecheck.fi_def in
  let freqs = Ast_estimator.stmt_freqs c.Pipeline.tc f Ast_estimator.Smart in
  Hashtbl.fold (fun sid v acc -> (sid, v) :: acc) freqs []
  |> List.sort compare
  |> List.iter (fun (sid, v) ->
       emit ~exp:"fig3" ~program:strchr_program
         ~estimator:(Printf.sprintf "sid%d" sid)
         Score.Freq v);
  let annot (s : Ast.stmt) =
    match Hashtbl.find_opt freqs s.Ast.sid with
    | Some v -> Printf.sprintf "%.1f" v
    | None -> ""
  in
  "Figure 3: smart-estimator frequencies on the strchr AST\n"
  ^ "(paper: body = 4; while = 5; if = 4; return str = 0.2 * 4 = 0.8;\n\
    \ str++ = 4 and return NULL = 1 because the AST model ignores returns)\n\n"
  ^ Pretty.fundef_tree ~annot f

(* ------------------------------------------------------------------ *)
(* Figure 4: intra-procedural weight-matching at the 5% cutoff *)

let fig4 () : string =
  let cutoff = 0.05 in
  let rows, avg_row =
    score_table ~exp_id:"fig4"
      [ col ~param:cutoff "loop" Score.Wm_intra (fun d ->
            intra_static_score d ~cutoff Pipeline.Iloop);
        col ~param:cutoff "smart" Score.Wm_intra (fun d ->
            intra_static_score d ~cutoff Pipeline.Ismart);
        col ~param:cutoff "markov" Score.Wm_intra (fun d ->
            intra_static_score d ~cutoff Pipeline.Imarkov);
        col ~param:cutoff "profiling" Score.Wm_intra (fun d ->
            intra_profiling_score d ~cutoff) ]
  in
  "Figure 4: intra-procedural basic-block weight matching (5% cutoff)\n\n"
  ^ Text_table.render
      ~aligns:[ Text_table.Left ]
      [ "program"; "loop"; "smart"; "markov"; "profiling" ]
      (rows @ [ avg_row ])
  ^ "\npaper: smart ~81% on average, within a few points of profiling;\n\
     markov no better than smart at the intra level.\n"
  ^ degraded_note ()

(* ------------------------------------------------------------------ *)
(* Figure 5a: simple function-invocation estimators at 25% *)

let fig5a () : string =
  let cutoff = 0.25 in
  let simple_cols =
    List.map2
      (fun estimator k ->
        col ~param:cutoff estimator Score.Wm_inter (fun d ->
            inter_static_score d ~cutoff (Pipeline.Isimple k)))
      [ "call_site"; "direct"; "all_rec"; "all_rec2" ]
      Inter_simple.all_kinds
  in
  let rows, avg_row =
    score_table ~exp_id:"fig5a"
      (simple_cols
      @ [ col ~param:cutoff "profiling" Score.Wm_inter (fun d ->
              inter_profiling_score d ~cutoff) ])
  in
  "Figure 5a: function invocation estimates, simple predictors (25% cutoff)\n\n"
  ^ Text_table.render
      ~aligns:[ Text_table.Left ]
      [ "program"; "call_site"; "direct"; "all_rec"; "all_rec2"; "profiling" ]
      (rows @ [ avg_row ])
  ^ "\npaper: all_rec2 slightly best at 25%; direct nearly as good and more\n\
     stable across cutoffs.\n"
  ^ degraded_note ()

(* ------------------------------------------------------------------ *)
(* Figure 5b/c: direct vs markov vs profiling at 10% and 25% *)

let fig5bc () : string =
  let section cutoff tag paper_note =
    let rows, avg_row =
      score_table ~exp_id:"fig5bc"
        [ col ~param:cutoff "direct" Score.Wm_inter (fun d ->
              inter_static_score d ~cutoff
                (Pipeline.Isimple Inter_simple.Direct));
          col ~param:cutoff "markov" Score.Wm_inter (fun d ->
              inter_static_score d ~cutoff Pipeline.Imarkov_inter);
          col ~param:cutoff "profiling" Score.Wm_inter (fun d ->
              inter_profiling_score d ~cutoff) ]
    in
    Printf.sprintf "Figure 5%s: function invocations at the %.0f%% cutoff\n\n"
      tag (cutoff *. 100.0)
    ^ Text_table.render
        ~aligns:[ Text_table.Left ]
        [ "program"; "direct"; "markov"; "profiling" ]
        (rows @ [ avg_row ])
    ^ paper_note
  in
  section 0.10 "b" "\n"
  ^ "\n"
  ^ section 0.25 "c"
      "\npaper: markov ~10 points above direct at both cutoffs;\n\
       ~81% on average at 25%.\n"
  ^ degraded_note ()

(* ------------------------------------------------------------------ *)
(* Figures 6-7: the strchr CFG linear system and its solution *)

let fig6_7 () : string =
  let c = strchr_compiled () in
  let fn = Option.get (Cfg.find_fn c.Pipeline.prog "strchr") in
  let presented =
    Markov_intra.present ~usage:(Pipeline.usage_of c fn) c.Pipeline.tc fn
  in
  Array.iteri
    (fun i v ->
      emit ~exp:"fig6_7" ~program:strchr_program
        ~estimator:(Printf.sprintf "x%d" i)
        Score.Freq v)
    presented.Markov_intra.solution;
  let buf = Buffer.create 512 in
  bprintf buf
    "Figures 6-7: Markov model of strchr (branch probabilities 0.8/0.2)\n\n";
  bprintf buf "equations (x_b = sum of p * x_pred):\n";
  List.iter
    (fun (b, preds) ->
      let fnb = fn.Cfg.fn_blocks.(b) in
      let rhs =
        if b = fn.Cfg.fn_entry then
          "1"
          ^ String.concat ""
              (List.map
                 (fun (p, w) -> Printf.sprintf " + %.2f*x%d" w p)
                 preds)
        else if preds = [] then "0"
        else
          String.concat " + "
            (List.map (fun (p, w) -> Printf.sprintf "%.2f*x%d" w p) preds)
      in
      bprintf buf "  x%d (%s) = %s\n" b (block_label fn fnb) rhs)
    presented.Markov_intra.equations;
  bprintf buf "\nsolution:\n";
  Array.iteri
    (fun i v ->
      bprintf buf "  x%d (%s) = %.2f\n" i
        (block_label fn fn.Cfg.fn_blocks.(i))
        v)
    presented.Markov_intra.solution;
  bprintf buf
    "\npaper solution: entry 1, while 2.78, if 2.22, return-in-loop 0.44,\n\
     str++ 1.78, return NULL 0.56 (entry merges into the while header here).\n";
  Buffer.contents buf

(* ------------------------------------------------------------------ *)
(* Figure 8: recursion makes the naive call-graph model invalid *)

let fig8 () : string =
  let d = Context.by_name "tree_mini" in
  let c = d.Context.compiled in
  let intra = smart_intra d in
  let buf = Buffer.create 512 in
  bprintf buf "Figure 8: invalid recursion estimates and their repair\n\n";
  (* the self-arc weight of count_nodes under the smart intra estimate *)
  List.iter
    (fun (src, dst, w) ->
      if src = dst then
        bprintf buf "  self-arc %s -> %s: weight %.2f%s\n" src dst w
          (if w > 1.0 then "  (IMPOSSIBLE: > 1 call to itself per call)"
           else ""))
    (Markov_inter.arc_weights c.Pipeline.graph ~intra);
  (match Markov_inter.estimate_raw c.Pipeline.graph ~intra with
  | Some raw ->
    List.iter
      (fun (name, v) ->
        emit ~exp:"fig8" ~program:"tree_mini"
          ~estimator:("naive:" ^ name) Score.Freq v)
      raw;
    let negatives = List.filter (fun (_, v) -> v < 0.0) raw in
    bprintf buf "\nnaive solve:%s\n"
      (if negatives = [] then " (no negative frequencies this time)" else "");
    List.iter
      (fun (name, v) -> bprintf buf "  %-14s %10.2f\n" name v)
      raw
  | None -> bprintf buf "\nnaive solve: system singular\n");
  let repaired = Markov_inter.estimate c.Pipeline.graph ~intra in
  List.iter
    (fun (name, v) ->
      emit ~exp:"fig8" ~program:"tree_mini"
        ~estimator:("repaired:" ^ name) Score.Freq v)
    repaired.Markov_inter.freqs;
  bprintf buf "\nafter clamping (recursive arcs > 1 reset to 0.8) and SCC repair:\n";
  List.iter
    (fun (name, v) -> bprintf buf "  %-14s %10.2f\n" name v)
    repaired.Markov_inter.freqs;
  let diag = repaired.Markov_inter.diag in
  List.iter
    (fun (estimator, v) ->
      emit ~exp:"fig8" ~program:"tree_mini" ~estimator Score.Count
        (float_of_int v))
    [ ("diag.clamped", List.length diag.Markov_inter.clamped_self_arcs);
      ("diag.repaired_sccs", diag.Markov_inter.repaired_sccs);
      ("diag.scale_iterations", diag.Markov_inter.scale_iterations) ];
  bprintf buf
    "\nclamped arcs: %d; SCC subproblems rescaled: %d (%d scale steps)\n"
    (List.length diag.Markov_inter.clamped_self_arcs)
    diag.Markov_inter.repaired_sccs diag.Markov_inter.scale_iterations;
  Buffer.contents buf

(* ------------------------------------------------------------------ *)
(* Figure 9: call-site ranking at the 25% cutoff *)

let fig9 () : string =
  let cutoff = 0.25 in
  let rows, avg_row =
    score_table ~exp_id:"fig9"
      ~keep:(fun d -> Cfg.direct_sites d.Context.compiled.Pipeline.prog <> [])
      [ col ~param:cutoff "direct" Score.Wm_callsite (fun d ->
            callsite_static_score d ~cutoff
              (Pipeline.Isimple Inter_simple.Direct));
        col ~param:cutoff "markov" Score.Wm_callsite (fun d ->
            callsite_static_score d ~cutoff Pipeline.Imarkov_inter);
        col ~param:cutoff "profiling" Score.Wm_callsite (fun d ->
            callsite_profiling_score d ~cutoff) ]
  in
  "Figure 9: call-site ranking (25% cutoff; indirect calls omitted)\n\n"
  ^ Text_table.render
      ~aligns:[ Text_table.Left ]
      [ "program"; "direct"; "markov"; "profiling" ]
      (rows @ [ avg_row ])
  ^ "\npaper: the markov combination identifies the busiest quarter of call\n\
     sites with ~76% accuracy.\n"
  ^ degraded_note ()

(* ------------------------------------------------------------------ *)
(* Figure 10: selective optimization of compress *)

let fig10 () : string =
  let d = Context.by_name "compress_mini" in
  let c = d.Context.compiled in
  let graph = c.Pipeline.graph in
  let names = graph.Callgraph.names in
  let intra = smart_intra d in
  (* rank functions descending by each source of invocation estimates *)
  let ranking (values : float array) : string list =
    let idx = Array.init (Array.length values) (fun i -> i) in
    Array.sort
      (fun a b ->
        match compare values.(b) values.(a) with
        | 0 -> compare a b
        | c -> c)
      idx;
    Array.to_list (Array.map (fun i -> names.(i)) idx)
  in
  (* rank by estimated total work, not just invocations: invocation *
     per-invocation block weight, as an optimizer would. The paper ranks
     by the markov invocation estimate; we report that. *)
  let markov_rank =
    ranking (Pipeline.inter_estimate c ~intra Pipeline.Imarkov_inter)
  in
  let profiles = d.Context.profiles in
  let first_profile = List.hd profiles in
  let rest_profiles = List.tl profiles in
  let profile_rank p = ranking (Pipeline.inter_actual c p) in
  let aggregate = Profile.aggregate c.Pipeline.prog rest_profiles in
  (* evaluation input: the last profile (not used for either ranking) *)
  let eval_profile = List.nth profiles (List.length profiles - 1) in
  let time optimized = Pipeline.modelled_time c eval_profile ~optimized in
  let base = time [] in
  let take n l = List.filteri (fun i _ -> i < n) l in
  let emit_speedups n triples =
    List.iter
      (fun (estimator, v) ->
        emit ~exp:"fig10" ~program:"compress_mini" ~estimator
          ~param:(float_of_int n) Score.Speedup v)
      triples
  in
  let row n =
    let s_est = base /. time (take n markov_rank) in
    let s_prof = base /. time (take n (profile_rank first_profile)) in
    let s_agg = base /. time (take n (profile_rank aggregate)) in
    emit_speedups n
      [ ("estimate", s_est); ("profile", s_prof); ("aggregate", s_agg) ];
    [ string_of_int n;
      Text_table.f2 s_est;
      Text_table.f2 s_prof;
      Text_table.f2 s_agg ]
  in
  let all_fns = Array.to_list names in
  let rows =
    List.map row [ 0; 1; 2; 3; 4; 5; 6 ]
    @ [ (let n = List.length all_fns in
         let s_all = base /. time all_fns in
         emit_speedups n
           [ ("estimate", s_all); ("profile", s_all); ("aggregate", s_all) ];
         [ string_of_int n;
           Text_table.f2 s_all;
           Text_table.f2 s_all;
           Text_table.f2 s_all ]) ]
  in
  "Figure 10: selective optimization of compress_mini\n"
  ^ "(modelled run time; optimized functions execute at half cost)\n\n"
  ^ Text_table.render
      [ "#optimized"; "estimate"; "profile"; "aggregate" ]
      rows
  ^ Printf.sprintf "\nmarkov ranking: %s\n"
      (String.concat " > " (take 6 markov_rank))
  ^ "\npaper: the static estimate finds compress's 4 dominant functions\n\
     within its top quarter; optimizing the remaining 12 adds nothing.\n"

(* ------------------------------------------------------------------ *)
(* Ablations: the paper asserts several knob choices without data
   ("the exact value chosen did not have a significant effect", "the
   latter performed slightly better"); these experiments produce the
   missing tables. Each cell is recorded with the row label folded into
   the estimator field ("row/column"), program = AVERAGE. *)

module Config = Core.Config

let suite_mean f = mean (suite_map f)

let emit_cell ~(exp : string) ~(row : string) ~(column : string)
    ?(param = 0.0) (metric : Score.metric) (value : float) : unit =
  emit ~exp ~program:Score.average_program ~estimator:(row ^ "/" ^ column)
    ~param metric value

let smart_fig4_avg () =
  suite_mean (fun d -> intra_static_score d ~cutoff:0.05 Pipeline.Ismart)

let markov_fig4_avg () =
  suite_mean (fun d -> intra_static_score d ~cutoff:0.05 Pipeline.Imarkov)

let markov_fig5_avg () =
  suite_mean (fun d -> inter_static_score d ~cutoff:0.25 Pipeline.Imarkov_inter)

let missrate_avg () =
  suite_mean (fun (d : Context.prog_data) ->
      let prog = d.Context.compiled.Pipeline.prog in
      let smart = Missrate.smart_predictor prog in
      mean (List.map (fun p -> Missrate.rate prog p smart) d.Context.profiles))

(* Leave-one-out heuristic contributions (paper section 4.1 discusses the
   heuristic list; this quantifies each member). *)
let ablation_heuristics () : string =
  let exp = "ablation_heuristics" in
  let row name set =
    Config.with_settings set (fun () ->
        let miss = missrate_avg () in
        let fig4 = smart_fig4_avg () in
        emit_cell ~exp ~row:name ~column:"miss_rate" Score.Miss_rate miss;
        emit_cell ~exp ~row:name ~column:"fig4_smart" ~param:0.05
          Score.Wm_intra fig4;
        [ name; Text_table.pct miss; Text_table.pct fig4 ])
  in
  let rows =
    [ row "full predictor" (fun _ -> ());
      row "- pointer" (fun c -> c.Config.heuristic_pointer <- false);
      row "- error-call" (fun c -> c.Config.heuristic_error_call <- false);
      row "- opcode" (fun c -> c.Config.heuristic_opcode <- false);
      row "- multi-and" (fun c -> c.Config.heuristic_multi_and <- false);
      row "- store" (fun c -> c.Config.heuristic_store <- false);
      row "- return" (fun c -> c.Config.heuristic_return <- false);
      row "none (default taken)"
        (fun c ->
          c.Config.heuristic_pointer <- false;
          c.Config.heuristic_error_call <- false;
          c.Config.heuristic_opcode <- false;
          c.Config.heuristic_multi_and <- false;
          c.Config.heuristic_store <- false;
          c.Config.heuristic_return <- false) ]
  in
  "Ablation A: leave-one-out heuristic contributions (suite averages)\n\n"
  ^ Text_table.render
      ~aligns:[ Text_table.Left ]
      [ "predictor"; "miss rate"; "fig4 smart score" ]
      rows
  ^ "\nlower miss rate / higher score is better; a row worse than the full\n\
     predictor means the removed heuristic was pulling its weight.\n"

(* Sensitivity to the predicted-arm probability (paper footnote 5). *)
let ablation_branch_probability () : string =
  let exp = "ablation_branch_prob" in
  let rows =
    List.map
      (fun p ->
        Config.with_settings
          (fun c -> c.Config.branch_probability <- p)
          (fun () ->
            let name = Printf.sprintf "%.2f" p in
            let fig4 = smart_fig4_avg () in
            let fig5 = markov_fig5_avg () in
            emit_cell ~exp ~row:name ~column:"fig4_smart" ~param:0.05
              Score.Wm_intra fig4;
            emit_cell ~exp ~row:name ~column:"fig5_markov" ~param:0.25
              Score.Wm_inter fig5;
            [ name; Text_table.pct fig4; Text_table.pct fig5 ]))
      [ 0.6; 0.7; 0.8; 0.9; 0.95 ]
  in
  "Ablation B: sensitivity to the predicted-arm probability\n\
   (paper footnote 5: \"The exact value chosen did not have a\n\
   significant effect\")\n\n"
  ^ Text_table.render
      ~aligns:[ Text_table.Left ]
      [ "probability"; "fig4 smart score"; "fig5 markov score" ]
      rows

(* Sensitivity to the standard loop count (paper section 4.1 argues 5 is
   near the observed average for non-scientific codes). *)
let ablation_loop_count () : string =
  let exp = "ablation_loop_count" in
  let rows =
    List.map
      (fun k ->
        Config.with_settings
          (fun c -> c.Config.loop_iterations <- k)
          (fun () ->
            let name = Printf.sprintf "%.0f" k in
            let fig4_smart = smart_fig4_avg () in
            let fig4_markov = markov_fig4_avg () in
            let fig5_markov = markov_fig5_avg () in
            emit_cell ~exp ~row:name ~column:"fig4_smart" ~param:0.05
              Score.Wm_intra fig4_smart;
            emit_cell ~exp ~row:name ~column:"fig4_markov" ~param:0.05
              Score.Wm_intra fig4_markov;
            emit_cell ~exp ~row:name ~column:"fig5_markov" ~param:0.25
              Score.Wm_inter fig5_markov;
            [ name; Text_table.pct fig4_smart; Text_table.pct fig4_markov;
              Text_table.pct fig5_markov ]))
      [ 2.0; 3.0; 5.0; 10.0; 50.0 ]
  in
  "Ablation C: sensitivity to the standard loop count\n\n"
  ^ Text_table.render
      ~aligns:[ Text_table.Left ]
      [ "iterations"; "fig4 smart"; "fig4 markov"; "fig5 markov" ]
      rows
  ^ "\npaper: 5 is near the observed average; weight matching mostly needs\n\
     loops to dominate non-loops, so the exact count matters little.\n"

(* Switch-arm weighting (paper footnote 3: weighting arms by their number
   of case labels "performed slightly better"). *)
let ablation_switch_weighting () : string =
  let exp = "ablation_switch" in
  let row name by_labels =
    Config.with_settings
      (fun c -> c.Config.switch_by_labels <- by_labels)
      (fun () ->
        let fig4_smart = smart_fig4_avg () in
        let fig4_markov = markov_fig4_avg () in
        let fig5_markov = markov_fig5_avg () in
        emit_cell ~exp ~row:name ~column:"fig4_smart" ~param:0.05
          Score.Wm_intra fig4_smart;
        emit_cell ~exp ~row:name ~column:"fig4_markov" ~param:0.05
          Score.Wm_intra fig4_markov;
        emit_cell ~exp ~row:name ~column:"fig5_markov" ~param:0.25
          Score.Wm_inter fig5_markov;
        [ name;
          Text_table.pct fig4_smart;
          Text_table.pct fig4_markov;
          Text_table.pct fig5_markov ])
  in
  let rows =
    [ row "by case labels" true; row "arms equally likely" false ]
  in
  "Ablation D: switch-arm weighting (paper footnote 3)\n\n"
  ^ Text_table.render
      ~aligns:[ Text_table.Left ]
      [ "weighting"; "fig4 smart"; "fig4 markov"; "fig5 markov" ]
      rows

(* Extension: a CFG-only structural estimator (loops recovered from back
   edges via dominators, frequency = count^depth) against the AST-based
   ones — quantifying what the paper gains by working "at the level of
   the abstract syntax" instead of Ball/Larus-style executable analysis. *)
let ext_structural () : string =
  let cutoff = 0.05 in
  let rows, avg_row =
    score_table ~exp_id:"ext_structural"
      [ col ~param:cutoff "structural" Score.Wm_intra (fun d ->
            intra_static_score d ~cutoff Pipeline.Istructural);
        col ~param:cutoff "loop" Score.Wm_intra (fun d ->
            intra_static_score d ~cutoff Pipeline.Iloop);
        col ~param:cutoff "smart" Score.Wm_intra (fun d ->
            intra_static_score d ~cutoff Pipeline.Ismart) ]
  in
  "Extension: structural (CFG-only) vs AST-based estimation (5% cutoff)\n\n"
  ^ Text_table.render
      ~aligns:[ Text_table.Left ]
      [ "program"; "structural"; "loop (AST)"; "smart (AST)" ]
      (rows @ [ avg_row ])
  ^ "\nThe structural estimator recovers loop nesting from dominators and\n\
     back edges alone; the AST adds branch direction, which is where the\n\
     remaining gap comes from.\n"
  ^ degraded_note ()

(* Extension: the paper's closing open question — does a predictor that
   generates probabilities directly (Wu-Larus evidence combination) make
   the intra-procedural Markov model worthwhile? *)
let ext_wu_larus () : string =
  let cutoff = 0.05 in
  let rows, avg_row =
    score_table ~exp_id:"ext_wu_larus"
      [ col ~param:cutoff "smart" Score.Wm_intra (fun d ->
            intra_static_score d ~cutoff Pipeline.Ismart);
        col ~param:cutoff "markov" Score.Wm_intra (fun d ->
            intra_static_score d ~cutoff Pipeline.Imarkov);
        col ~param:cutoff "markov_wl" Score.Wm_intra (fun d ->
            intra_static_score d ~cutoff Pipeline.Icombined);
        col ~param:cutoff "profiling" Score.Wm_intra (fun d ->
            intra_profiling_score d ~cutoff) ]
  in
  "Extension: probability-generating prediction (Wu-Larus 1994) feeding\n\
   the intra Markov model — the paper's closing open question\n\n"
  ^ Text_table.render
      ~aligns:[ Text_table.Left ]
      [ "program"; "smart"; "markov(0.8)"; "markov(WL)"; "profiling" ]
      (rows @ [ avg_row ])
  ^ "\nmarkov(WL) combines all firing heuristics with the Dempster-Shafer\n\
     rule and Ball/Larus hit rates instead of a single 0.8/0.2 guess.\n"
  ^ degraded_note ()

(* ------------------------------------------------------------------ *)

let all : (string * string * (unit -> string)) list =
  [ ("table1", "program inventory", table1);
    ("table2", "strchr weight-matching example", table2);
    ("fig2", "branch misprediction rates", fig2);
    ("fig3", "annotated strchr AST", fig3);
    ("fig4", "intra-procedural weight matching", fig4);
    ("fig5a", "simple invocation estimators", fig5a);
    ("fig5bc", "direct vs markov invocation estimators", fig5bc);
    ("fig6_7", "strchr Markov system", fig6_7);
    ("fig8", "recursion repair", fig8);
    ("fig9", "call-site ranking", fig9);
    ("fig10", "selective optimization", fig10);
    ("ablation_heuristics", "leave-one-out heuristic study",
     ablation_heuristics);
    ("ablation_branch_prob", "branch-probability sensitivity",
     ablation_branch_probability);
    ("ablation_loop_count", "loop-count sensitivity", ablation_loop_count);
    ("ablation_switch", "switch-weighting comparison",
     ablation_switch_weighting);
    ("ext_structural", "CFG-only structural estimator", ext_structural);
    ("ext_wu_larus", "probability-generating prediction", ext_wu_larus) ]
  |> List.map (fun (id, desc, f) ->
       (* Per-experiment isolation: one table failing (a degraded
          program a figure insists on, an injected worker death in a
          row fan-out) degrades to a notice while the rest of the
          evaluation renders; [--strict] re-raises out of here with the
          original backtrace. *)
       ( id, desc,
         fun () ->
           Obs.Probe.with_span ("experiment." ^ id) (fun () ->
               match
                 Fault.capture ~stage:Fault.Experiment ~subject:id
                   ~recovery:"experiment output replaced by a degradation \
                              notice"
                   f
               with
               | Ok s -> s
               | Error fault ->
                 Printf.sprintf
                   "experiment %s DEGRADED: %s\n\
                    (output omitted; see the fault summary)\n"
                   id fault.Fault.f_exn) ))

let find (id : string) : (unit -> string) option =
  List.find_map (fun (i, _, f) -> if i = id then Some f else None) all

let run_all () : string =
  String.concat "\n\n======================================================\n\n"
    (List.map (fun (_, _, f) -> f ()) all)
