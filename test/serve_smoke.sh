#!/bin/sh
# End-to-end smoke test for the serve daemon, runnable locally and in
# CI: a scripted newline-delimited session (analyze -> warm re-analyze
# -> one-function edit -> revert -> stats -> shutdown) piped through
# `bin serve`, asserting the incremental store's contract from the
# outside: the warm pass is a program cache hit that recomputes
# nothing, the edit pass recomputes only the new function, and the
# reverted pass returns scores bit-identical to the cold pass.
set -eu

BIN="${1:-./_build/default/bin/main.exe}"
dir="$(mktemp -d)"
trap 'rm -rf "$dir"' EXIT

cat > "$dir/session" <<'EOF'
{"id":1,"op":"analyze","name":"smoke","source":"int f(int x) { return x + 1; }\nint main() { return f(3); }\n"}

{"id":2,"op":"analyze","name":"smoke","source":"int f(int x) { return x + 1; }\nint main() { return f(3); }\n"}

{"id":3,"op":"analyze","name":"smoke","source":"int f(int x) { return x + 1; }\nint main() { return f(3); }\nint __probe(int x) { return x * 7; }\n"}

{"id":4,"op":"analyze","name":"smoke","source":"int f(int x) { return x + 1; }\nint main() { return f(3); }\n"}

{"id":5,"op":"stats"}

{"id":6,"op":"shutdown"}
EOF

"$BIN" serve --jobs 2 < "$dir/session" > "$dir/out"

line () { sed -n "${1}p" "$dir/out"; }
field () { line "$1" | sed -n "s/.*\"$2\":\([0-9][0-9]*\).*/\1/p"; }
scores () { line "$1" | sed 's/.*"scores"://'; }

fail () { echo "serve_smoke: FAIL: $1" >&2; exit 1; }

[ "$(wc -l < "$dir/out")" -eq 6 ] || fail "expected 6 response lines"

# 1: cold analyze — a real computation, no program hit.
line 1 | grep -q '"ok":true'            || fail "cold analyze not ok"
line 1 | grep -q '"program_hit":false'  || fail "cold analyze claims a hit"
cold_misses="$(field 1 fn_misses)"
[ "$cold_misses" -gt 0 ]                || fail "cold analyze recomputed nothing"

# 2: warm re-analyze — program hit, zero recomputation, identical scores.
line 2 | grep -q '"program_hit":true'   || fail "warm analyze missed the program cache"
[ "$(field 2 fn_misses)" -eq 0 ]        || fail "warm analyze recomputed functions"
[ "$(scores 1)" = "$(scores 2)" ]       || fail "warm scores differ from cold"

# 3: one appended function — reparse, but only the new function solves.
line 3 | grep -q '"program_hit":false'  || fail "edited source hit the program cache"
edit_misses="$(field 3 fn_misses)"
[ "$edit_misses" -gt 0 ]                || fail "edit pass recomputed nothing"
[ "$edit_misses" -lt "$cold_misses" ]   || fail "edit pass recomputed more than the edit"
[ "$(field 3 fn_hits)" -eq "$cold_misses" ] || fail "unchanged functions were not all served warm"

# 4: revert — bit-identical to the cold pass, nothing recomputed.
[ "$(field 4 fn_misses)" -eq 0 ]        || fail "reverted source recomputed functions"
[ "$(scores 1)" = "$(scores 4)" ]       || fail "reverted scores differ from cold"

# 5: stats — the store saw the hits, and the daemon stayed healthy.
line 5 | grep -q '"ok":true'            || fail "stats not ok"
[ "$(field 5 hits)" -gt 0 ]             || fail "stats reports no cache hits"
[ "$(field 5 faults)" -eq 0 ]           || fail "stats reports faults"

# 6: clean shutdown.
line 6 | grep -q '"stopping":true'      || fail "shutdown not acknowledged"

echo "serve_smoke: OK (cold misses=$cold_misses, edit misses=$edit_misses)"
