(* CFG construction tests: shapes for each control construct, structural
   invariants after simplification, call-site recording, and branch
   metadata. Includes qcheck properties over randomly generated
   structured programs. *)

open Cfront
module Cfg = Cfg_ir.Cfg
module Build = Cfg_ir.Build

let compile src =
  let tu = Parser.parse_string ~file:"t.c" src in
  let tc = Typecheck.check tu in
  Build.build tc

let fn_of src name =
  let prog = compile src in
  (prog, Option.get (Cfg.find_fn prog name))

let count_branches fn = List.length (Cfg.branches fn)

let count_term pred fn =
  Array.to_list fn.Cfg.fn_blocks
  |> List.filter (fun b -> pred b.Cfg.b_term)
  |> List.length

let test_straight_line () =
  let _, fn = fn_of "int f(int x) { x = x + 1; x = x * 2; return x; }" "f" in
  Alcotest.(check int) "single block" 1 (Cfg.n_blocks fn);
  Alcotest.(check int) "no branches" 0 (count_branches fn)

let test_if_shape () =
  let _, fn =
    fn_of "int f(int x) { if (x) x = 1; else x = 2; return x; }" "f"
  in
  (* cond, then, else, join = 4 blocks *)
  Alcotest.(check int) "blocks" 4 (Cfg.n_blocks fn);
  Alcotest.(check int) "one branch" 1 (count_branches fn);
  match (List.hd (Cfg.branches fn) |> snd).Cfg.br_kind with
  | Cfg.Kif -> ()
  | _ -> Alcotest.fail "kind"

let test_if_no_else () =
  let _, fn = fn_of "int f(int x) { if (x) x = 1; return x; }" "f" in
  Alcotest.(check int) "blocks" 3 (Cfg.n_blocks fn)

let test_while_shape () =
  let _, fn = fn_of "int f(int n) { while (n > 0) n--; return n; }" "f" in
  (* entry merges into header; header, body, exit *)
  Alcotest.(check int) "blocks" 3 (Cfg.n_blocks fn);
  let _, br = List.hd (Cfg.branches fn) in
  (match br.Cfg.br_kind with Cfg.Kwhile -> () | _ -> Alcotest.fail "kind");
  (* the header must have two predecessors: function entry side and body *)
  let header = fn.Cfg.fn_blocks.(fn.Cfg.fn_entry) in
  Alcotest.(check bool) "header has a back edge" true
    (List.length header.Cfg.b_preds >= 1)

let test_do_shape () =
  let _, fn = fn_of "int f(int n) { do { n--; } while (n); return n; }" "f" in
  let _, br = List.hd (Cfg.branches fn) in
  match br.Cfg.br_kind with Cfg.Kdo -> () | _ -> Alcotest.fail "kind"

let test_for_shape () =
  let _, fn =
    fn_of "int f(int n) { int i, s = 0; for (i = 0; i < n; i++) s += i; return s; }" "f"
  in
  let _, br = List.hd (Cfg.branches fn) in
  (match br.Cfg.br_kind with Cfg.Kfor -> () | _ -> Alcotest.fail "kind");
  (* init+header+body+step+exit, some merged: at least 4 blocks *)
  Alcotest.(check bool) "at least 4 blocks" true (Cfg.n_blocks fn >= 4)

let test_for_without_cond () =
  let _, fn =
    fn_of "int f(void) { int i = 0; for (;;) { i++; if (i > 3) break; } return i; }" "f"
  in
  (* no Kfor branch: the for-loop has no condition; the if provides one *)
  Alcotest.(check int) "only the if branch" 1 (count_branches fn)

let test_switch_shape () =
  let _, fn =
    fn_of
      "int f(int x) { switch (x) { case 1: return 10; case 2: case 3: return 20; default: return 30; } }"
      "f"
  in
  let switches =
    count_term (function Cfg.Tswitch _ -> true | _ -> false) fn
  in
  Alcotest.(check int) "one switch" 1 switches;
  Array.iter
    (fun b ->
      match b.Cfg.b_term with
      | Cfg.Tswitch (_, cases, _) ->
        Alcotest.(check int) "three case values" 3 (List.length cases);
        (* cases 2 and 3 share a target *)
        let t2 = List.assoc 2 cases and t3 = List.assoc 3 cases in
        Alcotest.(check int) "2 and 3 share target" t2 t3
      | _ -> ())
    fn.Cfg.fn_blocks

let test_switch_fallthrough_edges () =
  let _, fn =
    fn_of "int f(int x) { int r = 0; switch (x) { case 1: r = 1; case 2: r += 2; break; } return r; }"
      "f"
  in
  (* the case-1 block must fall through into the case-2 block *)
  let case_targets =
    Array.to_list fn.Cfg.fn_blocks
    |> List.concat_map (fun b ->
         match b.Cfg.b_term with
         | Cfg.Tswitch (_, cases, _) -> List.map snd cases
         | _ -> [])
  in
  match case_targets with
  | [ t1; t2 ] ->
    let b1 = fn.Cfg.fn_blocks.(t1) in
    Alcotest.(check (list int)) "fallthrough edge" [ t2 ]
      (Cfg.successors b1.Cfg.b_term)
  | _ -> Alcotest.fail "expected two cases"

let test_goto () =
  let _, fn =
    fn_of
      "int f(int n) { int s = 0; again: s += n; n--; if (n > 0) goto again; return s; }"
      "f"
  in
  (* the label block must have >= 2 predecessors (entry path + goto) *)
  let has_join =
    Array.exists
      (fun b -> List.length b.Cfg.b_preds >= 2)
      fn.Cfg.fn_blocks
  in
  Alcotest.(check bool) "label is a join point" true has_join

let test_break_continue () =
  let _, fn =
    fn_of
      "int f(int n) { int i, s = 0; for (i = 0; i < n; i++) { if (i == 2) continue; if (i == 5) break; s++; } return s; }"
      "f"
  in
  Alcotest.(check int) "three branches" 3 (count_branches fn)

let test_unreachable_dropped () =
  let _, fn =
    fn_of "int f(void) { return 1; return 2; return 3; }" "f"
  in
  Alcotest.(check int) "dead returns dropped" 1 (Cfg.n_blocks fn)

let test_call_sites () =
  let prog, fn =
    fn_of
      "int g(int x) { return x; }\n\
       int main(void) { int a = g(1); if (a) a = g(g(2)); printf(\"%d\", a); return a; }"
      "main"
  in
  let callees =
    List.map
      (fun cs ->
        match cs.Cfg.cs_callee with
        | Cfg.Direct n -> "d:" ^ n
        | Cfg.Builtin n -> "b:" ^ n
        | Cfg.Indirect -> "i")
      fn.Cfg.fn_call_sites
  in
  Alcotest.(check int) "four sites" 4 (List.length callees);
  Alcotest.(check int) "three direct g"
    3
    (List.length (List.filter (( = ) "d:g") callees));
  Alcotest.(check int) "one builtin" 1
    (List.length (List.filter (( = ) "b:printf") callees));
  (* program-wide ids are dense *)
  let ids = List.map (fun cs -> cs.Cfg.cs_id) (Cfg.all_sites prog) in
  Alcotest.(check (list int)) "dense ids" (List.init (List.length ids) Fun.id) ids

let test_indirect_call_site () =
  let _, fn =
    fn_of
      "int a(int x) { return x; }\n\
       int main(void) { int (*fp)(int) = a; return fp(3); }"
      "main"
  in
  let indirect =
    List.filter (fun cs -> cs.Cfg.cs_callee = Cfg.Indirect) fn.Cfg.fn_call_sites
  in
  Alcotest.(check int) "one indirect site" 1 (List.length indirect)

let test_branch_arms_recorded () =
  let _, fn =
    fn_of "int f(int x) { if (x) { return 1; } else { x++; } return x; }" "f"
  in
  let _, br = List.hd (Cfg.branches fn) in
  Alcotest.(check bool) "then arm" true (br.Cfg.br_then_arm <> None);
  Alcotest.(check bool) "else arm" true (br.Cfg.br_else_arm <> None)

(* --- structural invariants checked on arbitrary CFGs ----------------- *)

let check_invariants (fn : Cfg.fn) =
  let n = Cfg.n_blocks fn in
  Alcotest.(check bool) "entry in range" true (fn.Cfg.fn_entry < n);
  Array.iteri
    (fun i b ->
      Alcotest.(check int) "block ids sequential" i b.Cfg.b_id;
      List.iter
        (fun s ->
          if s < 0 || s >= n then
            Alcotest.failf "successor %d out of range in %s" s fn.Cfg.fn_name)
        (Cfg.successors b.Cfg.b_term);
      List.iter
        (fun p ->
          if p < 0 || p >= n then Alcotest.fail "pred out of range";
          let back = Cfg.successors fn.Cfg.fn_blocks.(p).Cfg.b_term in
          if not (List.mem i back) then
            Alcotest.failf "pred %d of %d lacks the forward edge" p i)
        b.Cfg.b_preds)
    fn.Cfg.fn_blocks;
  (* every block is reachable from the entry *)
  let seen = Array.make n false in
  let rec visit i =
    if not seen.(i) then begin
      seen.(i) <- true;
      List.iter visit (Cfg.successors fn.Cfg.fn_blocks.(i).Cfg.b_term)
    end
  in
  visit fn.Cfg.fn_entry;
  Array.iteri
    (fun i r ->
      if not r then Alcotest.failf "block %d unreachable in %s" i fn.Cfg.fn_name)
    seen

let test_invariants_on_suite () =
  List.iter
    (fun (p : Suite.Bench_prog.t) ->
      let prog = compile p.Suite.Bench_prog.source in
      List.iter check_invariants prog.Cfg.prog_fns)
    Suite.Registry.all

(* qcheck: random structured programs keep the invariants. *)
let gen_program : string QCheck.arbitrary =
  let open QCheck.Gen in
  let rec stmt depth =
    if depth <= 0 then
      oneofl [ "x++;"; "y += x;"; "x = y - 1;"; "return x;"; ";" ]
    else
      frequency
        [ (3, oneofl [ "x++;"; "y = y + x;"; "x = y % 7;" ]);
          (2, map2 (Printf.sprintf "if (x > %d) { %s }") (int_bound 9)
                 (stmt (depth - 1)));
          (1, map2 (Printf.sprintf "if (y < %d) { %s } else { y++; }")
                 (int_bound 9) (stmt (depth - 1)));
          (1, map (Printf.sprintf "while (x > 0) { x--; %s }")
                 (stmt (depth - 1)));
          (1, map (Printf.sprintf "for (x = 0; x < 3; x++) { %s }")
                 (stmt (depth - 1)));
          (1, map
                 (Printf.sprintf
                    "switch (x & 3) { case 0: %s break; case 1: y++; default: y--; }")
                 (stmt (depth - 1)));
          (1, return "if (x == 4) goto done;");
          (1, map (fun s -> "{ " ^ s ^ " y ^= x; }") (stmt (depth - 1))) ]
  in
  let body =
    list_size (int_range 1 8) (stmt 3) >|= fun stmts ->
    Printf.sprintf
      "int f(int x) { int y = 0; %s done: return x + y; }\n\
       int main(void) { return f(3); }"
      (String.concat " " stmts)
  in
  QCheck.make body ~print:(fun s -> s)

let prop_cfg_invariants =
  QCheck.Test.make ~name:"random programs keep CFG invariants" ~count:150
    gen_program (fun src ->
      let prog = compile src in
      List.iter check_invariants prog.Cfg.prog_fns;
      true)

let suite =
  [ Alcotest.test_case "straight line" `Quick test_straight_line;
    Alcotest.test_case "if/else" `Quick test_if_shape;
    Alcotest.test_case "if without else" `Quick test_if_no_else;
    Alcotest.test_case "while" `Quick test_while_shape;
    Alcotest.test_case "do-while" `Quick test_do_shape;
    Alcotest.test_case "for" `Quick test_for_shape;
    Alcotest.test_case "for without condition" `Quick test_for_without_cond;
    Alcotest.test_case "switch" `Quick test_switch_shape;
    Alcotest.test_case "switch fallthrough" `Quick test_switch_fallthrough_edges;
    Alcotest.test_case "goto" `Quick test_goto;
    Alcotest.test_case "break/continue" `Quick test_break_continue;
    Alcotest.test_case "unreachable code dropped" `Quick test_unreachable_dropped;
    Alcotest.test_case "call sites" `Quick test_call_sites;
    Alcotest.test_case "indirect call site" `Quick test_indirect_call_site;
    Alcotest.test_case "branch arms" `Quick test_branch_arms_recorded;
    Alcotest.test_case "invariants on the whole suite" `Slow
      test_invariants_on_suite;
    QCheck_alcotest.to_alcotest prop_cfg_invariants ]
