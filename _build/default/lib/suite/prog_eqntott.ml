(* eqntott_mini: translate boolean expressions into truth tables, the
   analogue of SPEC's eqntott. A recursive-descent parser builds an
   expression tree; the hot loop enumerates all 2^n input assignments and
   evaluates the tree for each — the same "tight enumeration over a
   parsed structure" shape as the original. *)

let source = {|
#define MAX_NODES 512
#define MAX_VARS 12

#define OP_VAR 0
#define OP_NOT 1
#define OP_AND 2
#define OP_OR 3
#define OP_XOR 4

int node_op[MAX_NODES];
int node_a[MAX_NODES];
int node_b[MAX_NODES];
int n_nodes;

char var_names[MAX_VARS];
int n_vars;

int peeked;
int have_peek;

int peek_ch(void) {
  if (!have_peek) { peeked = getchar(); have_peek = 1; }
  return peeked;
}

int next_ch(void) {
  int c = peek_ch();
  have_peek = 0;
  return c;
}

void skip_blank(void) {
  while (peek_ch() == ' ' || peek_ch() == '\t') next_ch();
}

int new_node(int op, int a, int b) {
  int id = n_nodes;
  if (n_nodes >= MAX_NODES) { printf("too many nodes\n"); exit(1); }
  n_nodes++;
  node_op[id] = op;
  node_a[id] = a;
  node_b[id] = b;
  return id;
}

int var_index(int c) {
  int i;
  for (i = 0; i < n_vars; i++)
    if (var_names[i] == c) return i;
  if (n_vars >= MAX_VARS) { printf("too many variables\n"); exit(1); }
  var_names[n_vars] = c;
  n_vars++;
  return n_vars - 1;
}

/* grammar: or := xor ('|' xor)*  ; xor := and ('^' and)*
   and := unary ('&' unary)* ; unary := '!' unary | '(' or ')' | var */

int parse_or(void);

int parse_unary(void) {
  int c, sub;
  skip_blank();
  c = peek_ch();
  if (c == '!') {
    next_ch();
    sub = parse_unary();
    return new_node(OP_NOT, sub, -1);
  }
  if (c == '(') {
    next_ch();
    sub = parse_or();
    skip_blank();
    if (peek_ch() == ')') next_ch();
    return sub;
  }
  next_ch();
  return new_node(OP_VAR, var_index(c), -1);
}

int parse_and(void) {
  int left = parse_unary(), right;
  skip_blank();
  while (peek_ch() == '&') {
    next_ch();
    right = parse_unary();
    left = new_node(OP_AND, left, right);
    skip_blank();
  }
  return left;
}

int parse_xor(void) {
  int left = parse_and(), right;
  skip_blank();
  while (peek_ch() == '^') {
    next_ch();
    right = parse_and();
    left = new_node(OP_XOR, left, right);
    skip_blank();
  }
  return left;
}

int parse_or(void) {
  int left = parse_xor(), right;
  skip_blank();
  while (peek_ch() == '|') {
    next_ch();
    right = parse_xor();
    left = new_node(OP_OR, left, right);
    skip_blank();
  }
  return left;
}

/* Evaluate node [id] under assignment bitmask [bits]; hot function. */
int eval_node(int id, int bits) {
  int op = node_op[id];
  if (op == OP_VAR) return (bits >> node_a[id]) & 1;
  if (op == OP_NOT) return !eval_node(node_a[id], bits);
  if (op == OP_AND) return eval_node(node_a[id], bits) && eval_node(node_b[id], bits);
  if (op == OP_OR) return eval_node(node_a[id], bits) || eval_node(node_b[id], bits);
  return eval_node(node_a[id], bits) ^ eval_node(node_b[id], bits);
}

/* Enumerate the full truth table; prints a compact summary per row
   block to keep output bounded. */
void print_table(int root) {
  int rows = 1 << n_vars;
  int bits, v, ones = 0, sig = 0;
  for (bits = 0; bits < rows; bits++) {
    v = eval_node(root, bits);
    if (v) {
      ones++;
      sig = (sig * 31 + bits) & 0xffffff;
    }
  }
  printf("vars=%d rows=%d ones=%d sig=%x\n", n_vars, rows, ones, sig);
}

int main(void) {
  int root, c;
  while (1) {
    skip_blank();
    c = peek_ch();
    if (c == EOF) break;
    if (c == '\n' || c == '\r') { next_ch(); continue; }
    n_nodes = 0;
    n_vars = 0;
    root = parse_or();
    print_table(root);
    /* consume to end of line */
    while (peek_ch() != '\n' && peek_ch() != EOF) next_ch();
  }
  return 0;
}
|}

let input_small =
  String.concat "\n"
    [ "a & b | !c"; "(a ^ b) & (c | d)"; "!a & !b & !c"; "a | b | c | d" ]

let input_wide =
  String.concat "\n"
    [ "(a&b)|(c&d)|(e&f)|(g&h)";
      "a ^ b ^ c ^ d ^ e ^ f ^ g ^ h";
      "!(a & b) | (c ^ (d & e)) & !(f | g)" ]

let input_deep =
  String.concat "\n"
    [ "((((a&b)|c)&d)|e)&(((f|g)&h)|i)";
      "!(!(!(a))) ^ (b & (c | (d & (e | f))))";
      "(a|b)&(a|c)&(b|c)&(a|d)" ]

let input_mixed =
  String.concat "\n"
    [ "a&b&c&d&e&f&g&h&i&j";
      "a|b";
      "(a^b)|(b^c)|(c^d)|(d^e)";
      "!a";
      "(a&!b)|(!a&b)" ]

let program : Bench_prog.t =
  { Bench_prog.name = "eqntott_mini";
    description = "Boolean expressions to truth tables";
    analogue = "eqntott";
    source;
    runs =
      [ Bench_prog.run ~input:input_small ();
        Bench_prog.run ~input:input_wide ();
        Bench_prog.run ~input:input_deep ();
        Bench_prog.run ~input:input_mixed () ] }
