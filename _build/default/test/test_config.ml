(* Configuration and ablation-machinery tests: knobs actually steer the
   estimators, and settings are restored after [with_settings] even on
   exceptions. *)

open Cfront
module Config = Core.Config
module BP = Core.Branch_predictor
module AE = Core.Ast_estimator
module Cfg = Cfg_ir.Cfg

let compile src =
  let tu = Parser.parse_string ~file:"t.c" src in
  let tc = Typecheck.check tu in
  (tc, Cfg_ir.Build.build tc)

let test_restore () =
  Config.with_settings
    (fun c -> c.Config.loop_iterations <- 9.0)
    (fun () ->
      Alcotest.(check (float 1e-9)) "inside" 9.0
        Config.current.Config.loop_iterations);
  Alcotest.(check (float 1e-9)) "restored" 5.0
    Config.current.Config.loop_iterations

let test_restore_on_exception () =
  (try
     Config.with_settings
       (fun c -> c.Config.branch_probability <- 0.99)
       (fun () -> failwith "boom")
   with Failure _ -> ());
  Alcotest.(check (float 1e-9)) "restored after raise" 0.8
    Config.current.Config.branch_probability

let test_loop_count_changes_estimates () =
  let tc, prog =
    compile "int f(int n) { int i, s = 0; for (i = 0; i < n; i++) s++; return s; }"
  in
  let fn = Option.get (Cfg.find_fn prog "f") in
  let max_freq k =
    Config.with_settings
      (fun c -> c.Config.loop_iterations <- k)
      (fun () ->
        Array.fold_left max 0.0 (AE.block_freqs tc fn AE.Smart))
  in
  Alcotest.(check (float 1e-9)) "k=5 header" 5.0 (max_freq 5.0);
  Alcotest.(check (float 1e-9)) "k=10 header" 10.0 (max_freq 10.0);
  Alcotest.(check (float 1e-9)) "k=2 header" 2.0 (max_freq 2.0)

let test_branch_probability_changes_estimates () =
  let tc, prog =
    compile "int f(int *p) { if (p == NULL) return 1; return 0; }"
  in
  let fn = Option.get (Cfg.find_fn prog "f") in
  let min_freq p =
    Config.with_settings
      (fun c -> c.Config.branch_probability <- p)
      (fun () ->
        Array.fold_left min infinity (AE.block_freqs tc fn AE.Smart))
  in
  (* the unlikely arm gets 1 - p *)
  Alcotest.(check (float 1e-9)) "p=0.8" 0.2 (min_freq 0.8);
  Alcotest.(check (float 1e-9)) "p=0.95" 0.05 (min_freq 0.95)

let test_heuristic_toggle () =
  let tc, prog =
    compile "int f(int *p) { if (p == NULL) return 1; return 0; }"
  in
  let fn = Option.get (Cfg.find_fn prog "f") in
  let usage = Usage.of_fun tc fn.Cfg.fn_def in
  let _, br = List.hd (Cfg.branches fn) in
  (* with pointer disabled, the opcode heuristic fires on == instead *)
  Config.with_settings
    (fun c -> c.Config.heuristic_pointer <- false)
    (fun () ->
      match BP.predict tc usage br with
      | BP.NotTaken, BP.Hopcode -> ()
      | _, r ->
        Alcotest.failf "expected opcode fallback, got %s"
          (BP.reason_to_string r));
  (* with both disabled, nothing applies: default taken *)
  Config.with_settings
    (fun c ->
      c.Config.heuristic_pointer <- false;
      c.Config.heuristic_opcode <- false;
      c.Config.heuristic_return <- false)
    (fun () ->
      match BP.predict tc usage br with
      | BP.Taken, BP.Hdefault -> ()
      | _, r ->
        Alcotest.failf "expected default, got %s" (BP.reason_to_string r))

let test_loop_probability_follows_count () =
  let tc, prog = compile "int f(int n) { while (n > 5) n--; return n; }" in
  let fn = Option.get (Cfg.find_fn prog "f") in
  let usage = Usage.of_fun tc fn.Cfg.fn_def in
  let _, br = List.hd (Cfg.branches fn) in
  Config.with_settings
    (fun c -> c.Config.loop_iterations <- 10.0)
    (fun () ->
      Alcotest.(check (float 1e-9)) "continue prob 0.9" 0.9
        (BP.probability_true tc usage br))

let test_switch_weighting_toggle () =
  let tc, prog =
    compile
      {|
int f(int c) {
  switch (c) {
  case 1: case 2: case 3: return 10;
  default: return 0;
  }
}
|}
  in
  let fn = Option.get (Cfg.find_fn prog "f") in
  let arm_freq by_labels =
    Config.with_settings
      (fun c -> c.Config.switch_by_labels <- by_labels)
      (fun () ->
        let freqs = Core.Markov_intra.block_freqs tc fn in
        (* the three-label arm's block: max non-entry frequency *)
        let m = ref 0.0 in
        Array.iteri
          (fun i v -> if i <> fn.Cfg.fn_entry && v > !m then m := v)
          freqs;
        !m)
  in
  Alcotest.(check (float 1e-9)) "by labels 3/4" 0.75 (arm_freq true);
  Alcotest.(check (float 1e-9)) "equal arms 1/2" 0.5 (arm_freq false)

let suite =
  [ Alcotest.test_case "restore" `Quick test_restore;
    Alcotest.test_case "restore on exception" `Quick test_restore_on_exception;
    Alcotest.test_case "loop count steers estimates" `Quick
      test_loop_count_changes_estimates;
    Alcotest.test_case "branch probability steers estimates" `Quick
      test_branch_probability_changes_estimates;
    Alcotest.test_case "heuristic toggles" `Quick test_heuristic_toggle;
    Alcotest.test_case "loop probability follows count" `Quick
      test_loop_probability_follows_count;
    Alcotest.test_case "switch weighting toggle" `Quick
      test_switch_weighting_toggle ]
