(** Branch-prediction miss rates against measured profiles (paper
    Figure 2): the fraction of dynamic branch executions whose direction
    was mispredicted. Branches with constant-foldable conditions are
    predicted but excluded from the score, and switches are excluded
    entirely, as in the paper. *)

module Typecheck = Cfront.Typecheck
module Usage = Cfront.Usage
module Const_fold = Cfront.Const_fold
module Cfg = Cfg_ir.Cfg
module Profile = Cinterp.Profile

(** A static direction choice for each branch of each function. *)
type predictor =
  fn:Cfg.fn -> block:int -> Cfg.branch -> Branch_predictor.prediction

(** Dynamic [(mispredicted, total)] counts over all scored branches. *)
val tally : Cfg.program -> Profile.t -> predictor -> float * float

(** The miss rate in [0, 1]; [0] when no branch executes. *)
val rate : Cfg.program -> Profile.t -> predictor -> float

(** The paper's heuristic predictor, with per-function usage analyses
    precomputed. *)
val smart_predictor : Cfg.program -> predictor

(** Majority direction per branch in a training profile; unexecuted
    branches default to taken. This is "profiling with alternate inputs"
    when trained on the aggregate of the other inputs. *)
val majority_predictor : Profile.t -> predictor

(** The perfect static predictor: majority direction in the evaluation
    profile itself — the floor for any static scheme (paper footnote 4). *)
val psp_rate : Cfg.program -> Profile.t -> float
