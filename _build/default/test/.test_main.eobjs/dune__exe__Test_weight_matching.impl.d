test/test_weight_matching.ml: Alcotest Array Core Printf QCheck QCheck_alcotest String
