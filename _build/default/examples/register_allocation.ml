(* Register allocation guided by static frequency estimates — the first
   optimization the paper's introduction motivates ("per-function register
   allocation"). A spill-cost allocator weights each variable by
   (occurrences in block) x (block execution frequency) and keeps the
   heaviest variables in registers. We allocate once with the smart static
   estimate and once with a measured profile, then replay the profile to
   count the memory accesses each allocation would perform: if the
   estimate ranks blocks like reality, the static allocation matches the
   profile-guided one without ever running the program.

     dune exec examples/register_allocation.exe *)

module Pipeline = Core.Pipeline
module Cfg = Cfg_ir.Cfg
module Profile = Cinterp.Profile
module Ast = Cfront.Ast
module Typecheck = Cfront.Typecheck

let source = {|
/* A function with pressure: hot loop variables vs cold setup ones. */
int convolve(int *signal, int n, int *kernel, int k, int *out) {
  int i, j, acc, edge, checksum, scale;
  scale = kernel[0] + 1;        /* cold: used once at setup */
  checksum = 0;
  edge = k / 2;
  for (i = edge; i < n - edge; i++) {
    acc = 0;
    for (j = 0; j < k; j++) {
      acc += signal[i + j - edge] * kernel[j];
    }
    out[i] = acc / scale;
    checksum += out[i];
  }
  return checksum;
}

int main(void) {
  int signal[300]; int out[300]; int kernel[5];
  int i;
  for (i = 0; i < 300; i++) signal[i] = (i * 13) % 50;
  for (i = 0; i < 5; i++) kernel[i] = i + 1;
  printf("%d\n", convolve(signal, 300, kernel, 5, out));
  return 0;
}
|}

(* Per-local spill weight under a block-frequency vector: number of
   occurrences of the local in each block, weighted by block frequency. *)
let spill_weights (c : Pipeline.compiled) (fn : Cfg.fn)
    (freqs : float array) : float array =
  let fi = fn.Cfg.fn_info in
  let n_locals = Array.length fi.Typecheck.fi_locals in
  let weights = Array.make n_locals 0.0 in
  Array.iter
    (fun (b : Cfg.block) ->
      let count_expr (e : Ast.expr) =
        Ast.iter_expr
          (fun x ->
            match Typecheck.resolution_of c.Pipeline.tc x with
            | Some (Typecheck.Rlocal slot) ->
              weights.(slot) <- weights.(slot) +. freqs.(b.Cfg.b_id)
            | _ -> ())
          e
      in
      List.iter
        (function
          | Cfg.Iexpr e -> count_expr e
          | Cfg.Ilocal_init (_, d) -> (
            match d.Ast.d_init with
            | Some (Ast.Iexpr e) -> count_expr e
            | _ -> ()))
        b.Cfg.b_instrs;
      match b.Cfg.b_term with
      | Cfg.Tbranch (br, _, _) -> count_expr br.Cfg.br_cond
      | Cfg.Tswitch (e, _, _) -> count_expr e
      | Cfg.Treturn (Some e) -> count_expr e
      | Cfg.Tjump _ | Cfg.Treturn None -> ())
    fn.Cfg.fn_blocks;
  weights

(* Keep the top [k] locals by weight in registers. *)
let allocate (weights : float array) (k : int) : bool array =
  let order = Array.init (Array.length weights) Fun.id in
  Array.sort (fun a b -> compare weights.(b) weights.(a)) order;
  let in_reg = Array.make (Array.length weights) false in
  Array.iteri (fun rank slot -> if rank < k then in_reg.(slot) <- true) order;
  in_reg

(* Memory accesses this allocation performs under the real profile:
   every occurrence of a spilled local costs one access, weighted by the
   measured block counts. *)
let memory_accesses (c : Pipeline.compiled) (fn : Cfg.fn)
    (actual : float array) (in_reg : bool array) : float =
  let weights = spill_weights c fn actual in
  let total = ref 0.0 in
  Array.iteri
    (fun slot w -> if not in_reg.(slot) then total := !total +. w)
    weights;
  ignore c;
  !total

let () =
  let c = Pipeline.compile ~name:"regalloc" source in
  let fn = Option.get (Cfg.find_fn c.Pipeline.prog "convolve") in
  let fi = fn.Cfg.fn_info in
  let outcome = Pipeline.run_once c { Pipeline.argv = []; input = "" } in
  let actual = Profile.block_counts outcome.Cinterp.Eval.profile "convolve" in
  let estimated = Pipeline.intra_provider c Pipeline.Ismart "convolve" in

  let est_weights = spill_weights c fn estimated in
  let act_weights = spill_weights c fn actual in
  Printf.printf "%-10s %14s %14s\n" "local" "est. weight" "actual weight";
  Array.iteri
    (fun slot (li : Typecheck.local_info) ->
      Printf.printf "%-10s %14.1f %14.1f\n" li.Typecheck.l_name
        est_weights.(slot) act_weights.(slot))
    fi.Typecheck.fi_locals;

  Printf.printf "\n%-28s %16s %16s\n" "registers available"
    "static alloc" "profile alloc";
  List.iter
    (fun k ->
      let static_alloc = allocate est_weights k in
      let profile_alloc = allocate act_weights k in
      Printf.printf "%-28d %16.0f %16.0f\n" k
        (memory_accesses c fn actual static_alloc)
        (memory_accesses c fn actual profile_alloc))
    [ 2; 4; 6; 8 ];
  print_newline ();
  print_endline
    "memory accesses (lower is better); when the columns agree, the static";
  print_endline
    "estimate bought profile-quality register allocation with no profiling."
