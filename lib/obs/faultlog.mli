(** Process-wide fault record store — the recording half of the fault
    tolerance layer. [Driver.Fault] builds the typed taxonomy, capture
    combinators and rendering on top; this module lives at the bottom of
    the tree so the solvers and the interpreter can record recoveries
    without linking against the driver.

    Thread model: one mutex-protected list. Record order across domains
    is scheduling-dependent; consumers must sort before rendering
    anything that has to be deterministic. *)

type t = {
  stage : string;      (** compile | profile | solve | estimate | ... *)
  subject : string;    (** program or function name; [""] when global *)
  detail : string;     (** free-form context: injection point, run index *)
  exn_text : string;   (** printed exception, [""] for non-exception faults *)
  backtrace : string;  (** raw backtrace text, [""] when not captured *)
  recovery : string;   (** what the system did instead of crashing *)
}

val record :
  ?subject:string ->
  ?detail:string ->
  ?exn_text:string ->
  ?backtrace:string ->
  stage:string ->
  string ->
  unit
(** [record ~stage recovery] appends a fault record. *)

val all : unit -> t list
(** Every recorded fault, oldest first. *)

val count : unit -> int

val reset : unit -> unit
(** Drop all records. Call between parallel regions only. *)
