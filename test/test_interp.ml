(* Interpreter tests: C semantics end-to-end (arithmetic, pointers,
   arrays, structs, strings, control flow, function pointers, recursion),
   the runtime library, memory-safety diagnostics, profiling counters,
   and a differential qcheck property comparing random integer
   expressions against reference 32-bit semantics. *)

module Pipeline = Core.Pipeline
module Cfg = Cfg_ir.Cfg
module Profile = Cinterp.Profile
module Eval = Cinterp.Eval

let run ?(argv = []) ?(input = "") src =
  let c = Pipeline.compile ~name:"t" src in
  Pipeline.run_once c { Pipeline.argv; input }

let output ?argv ?input src = (run ?argv ?input src).Eval.stdout_text

let check_output name src expected =
  Alcotest.(check string) name expected (output src)

let check_main name body expected =
  check_output name (Printf.sprintf "int main(void) { %s }" body) expected

let test_arith () =
  check_main "basic arithmetic"
    {|printf("%d %d %d %d %d", 7 + 3, 7 - 3, 7 * 3, 7 / 3, 7 % 3); return 0;|}
    "10 4 21 2 1";
  check_main "division truncates toward zero"
    {|printf("%d %d %d %d", -7 / 2, 7 / -2, -7 % 2, 7 % -2); return 0;|}
    "-3 -3 -1 1";
  check_main "shifts"
    {|printf("%d %d %d", 1 << 10, -16 >> 2, 1024 >> 3); return 0;|}
    "1024 -4 128";
  check_main "bitwise"
    {|printf("%d %d %d %d", 12 & 10, 12 | 10, 12 ^ 10, ~0); return 0;|}
    "8 14 6 -1"

let test_wrap32 () =
  check_main "overflow wraps to 32 bits"
    {|int x = 2147483647; x = x + 1; printf("%d", x); return 0;|}
    "-2147483648";
  check_main "multiplication wraps"
    {|int x = 65536; printf("%d", x * x); return 0;|} "0";
  check_main "hash-style wrap"
    {|int h = 5381, i; for (i = 0; i < 20; i++) h = h * 33 + i;
      printf("%d", h); return 0;|}
    (let h = ref 5381l in
     for i = 0 to 19 do
       h := Int32.add (Int32.mul !h 33l) (Int32.of_int i)
     done;
     Int32.to_string !h)

let test_char_semantics () =
  check_main "char stores wrap to signed 8-bit"
    {|char c = 200; printf("%d", c); return 0;|} "-56";
  check_main "char arithmetic promotes"
    {|char c = 'A'; printf("%d %c", c + 1, c + 1); return 0;|} "66 B"

let test_float_semantics () =
  check_main "double arithmetic"
    {|double d = 1.5; d = d * 4.0 + 0.25; printf("%.2f", d); return 0;|}
    "6.25";
  check_main "int/double conversions"
    {|double d = 7 / 2; double e = 7 / 2.0; int t = 3.99;
      printf("%.1f %.2f %d", d, e, t); return 0;|}
    "3.0 3.50 3";
  check_main "math builtins"
    {|printf("%.3f %.1f %.1f", sqrt(2.0), floor(3.7), fabs(-2.5)); return 0;|}
    "1.414 3.0 2.5"

let test_logic () =
  check_main "short circuit and side effects"
    {|int n = 0;
      int t = (n = 1, 0) && (n = 2, 1);
      int u = 1 || (n = 9);
      printf("%d %d %d", t, u, n); return 0;|}
    "0 1 1";
  check_main "comparison results are 0/1"
    {|printf("%d %d %d", 3 > 2, 2 > 3, !(5 == 5)); return 0;|} "1 0 0";
  check_main "ternary"
    {|int x = 5; printf("%d %d", x > 3 ? 10 : 20, x > 9 ? 1 : 0); return 0;|}
    "10 0"

let test_pointers_arrays () =
  check_main "pointer arithmetic walks arrays"
    {|int a[5]; int *p; int s = 0;
      for (p = a; p < a + 5; p++) *p = (int)(p - a) * 2;
      s = a[0] + a[1] + a[2] + a[3] + a[4];
      printf("%d %d", s, *(a + 3)); return 0;|}
    "20 6";
  check_main "pointer to pointer"
    {|int x = 7; int *p = &x; int **pp = &p;
      **pp = 9; printf("%d", x); return 0;|}
    "9";
  check_main "i[a] form"
    {|int a[3]; a[1] = 42; printf("%d", 1[a]); return 0;|} "42";
  check_main "2d array"
    {|int m[3][4]; int i, j, s = 0;
      for (i = 0; i < 3; i++) for (j = 0; j < 4; j++) m[i][j] = i * 10 + j;
      for (i = 0; i < 3; i++) s += m[i][i];
      printf("%d %d", s, m[2][3]); return 0;|}
    "33 23"

let test_structs () =
  check_output "struct fields, copies, pointers"
    {|
struct point { int x; int y; };
struct rect { struct point lo; struct point hi; };
int area(struct rect r) { return (r.hi.x - r.lo.x) * (r.hi.y - r.lo.y); }
int main(void) {
  struct rect r, s;
  struct point *p = &r.hi;
  r.lo.x = 1; r.lo.y = 2;
  p->x = 5; p->y = 6;
  s = r;                 /* whole-struct copy */
  s.lo.x = 0;
  printf("%d %d %d", area(r), area(s), r.lo.x);
  return 0;
}
|}
    "16 20 1";
  check_output "linked list via malloc"
    {|
struct node { int v; struct node *next; };
int main(void) {
  struct node *head = NULL, *n;
  int i, s = 0;
  for (i = 0; i < 5; i++) {
    n = (struct node *)malloc(sizeof(struct node));
    n->v = i; n->next = head; head = n;
  }
  for (n = head; n != NULL; n = n->next) s = s * 10 + n->v;
  printf("%d", s);
  return 0;
}
|}
    "43210"

let test_strings_builtins () =
  check_main "string builtins"
    {|char buf[32];
      strcpy(buf, "hello");
      strcat(buf, " world");
      printf("%d %d %s", strlen(buf), strcmp(buf, "hello world"), buf);
      return 0;|}
    "11 0 hello world";
  check_main "strchr builtin"
    {|char *p = strchr("abcdef", 'd'); printf("%s", p); return 0;|} "def";
  check_main "atoi"
    {|printf("%d %d %d", atoi("42"), atoi("-17x"), atoi("zzz")); return 0;|}
    "42 -17 0";
  check_main "sprintf then puts"
    {|char b[40]; sprintf(b, "<%d|%s>", 5, "ok"); puts(b); return 0;|}
    "<5|ok>\n";
  check_main "memset memcpy"
    {|int a[4]; int b[4]; int i;
      memset(a, 0, 4);
      a[2] = 9;
      memcpy(b, a, 4);
      for (i = 0; i < 4; i++) printf("%d", b[i]);
      return 0;|}
    "0090"

let test_printf_formats () =
  check_main "widths and precision"
    {|printf("[%5d][%-5d][%05d][%x][%X][%o][%c][%8.3f][%e]",
            42, 42, 42, 255, 255, 8, 'Q', 3.14159, 1500.0);
      return 0;|}
    "[   42][42   ][00042][ff][FF][10][Q][   3.142][1.500000e+03]";
  check_main "percent escape" {|printf("100%%"); return 0;|} "100%";
  check_main "negative zero pad" {|printf("%05d", -42); return 0;|} "-0042"

let test_stdin () =
  let out =
    output
      ~input:"hello\nworld\n"
      {|int main(void) { int c, lines = 0, chars = 0;
        while ((c = getchar()) != EOF) { chars++; if (c == '\n') lines++; }
        printf("%d %d", lines, chars); return 0; }|}
  in
  Alcotest.(check string) "getchar stream" "2 12" out

let test_argv () =
  let out =
    output ~argv:[ "alpha"; "beta" ]
      {|int main(int argc, char **argv) {
          int i;
          printf("%d", argc);
          for (i = 1; i < argc; i++) printf(" %s", argv[i]);
          return 0; }|}
  in
  Alcotest.(check string) "argc/argv" "3 alpha beta" out

let test_recursion () =
  check_output "mutual recursion"
    {|
int is_odd(int n);
int is_even(int n) { if (n == 0) return 1; return is_odd(n - 1); }
int is_odd(int n) { if (n == 0) return 0; return is_even(n - 1); }
int main(void) { printf("%d %d", is_even(10), is_odd(7)); return 0; }
|}
    "1 1";
  check_output "ackermann (small)"
    {|
int ack(int m, int n) {
  if (m == 0) return n + 1;
  if (n == 0) return ack(m - 1, 1);
  return ack(m - 1, ack(m, n - 1));
}
int main(void) { printf("%d", ack(2, 3)); return 0; }
|}
    "9"

let test_function_pointers () =
  check_output "dispatch table"
    {|
int add(int a, int b) { return a + b; }
int sub(int a, int b) { return a - b; }
int mul(int a, int b) { return a * b; }
int (*ops[3])(int, int) = { add, sub, mul };
int main(void) {
  int i, r = 0;
  for (i = 0; i < 3; i++) r = r * 100 + ops[i](7, 3);
  printf("%d", r);
  return 0;
}
|}
    "100421"

let test_static_locals () =
  check_output "static local persists"
    {|
int counter(void) { static int n = 100; n++; return n; }
int main(void) { counter(); counter(); printf("%d", counter()); return 0; }
|}
    "103"

let test_global_initializers () =
  check_output "global arrays and strings"
    {|
int primes[5] = { 2, 3, 5, 7, 11 };
char greeting[] = "hey";
struct pair { int a; int b; };
struct pair p = { 4, 9 };
double scale = 2.5;
int main(void) {
  printf("%d %s %d %.1f", primes[3], greeting, p.a * p.b, scale);
  return 0;
}
|}
    "7 hey 36 2.5"

let test_switch_semantics () =
  check_output "switch with fallthrough and default"
    {|
int classify(int x) {
  int r = 0;
  switch (x) {
  case 0: r += 1;        /* falls through */
  case 1: r += 2; break;
  case 5: r = 50; break;
  default: r = -1; break;
  }
  return r;
}
int main(void) {
  printf("%d %d %d %d", classify(0), classify(1), classify(5), classify(9));
  return 0;
}
|}
    "3 2 50 -1"

let test_exit_and_abort () =
  let o = run {|int main(void) { printf("before"); exit(3); printf("after"); return 0; }|} in
  Alcotest.(check int) "exit code" 3 o.Eval.exit_code;
  Alcotest.(check string) "output stops at exit" "before" o.Eval.stdout_text;
  let o2 = run {|int main(void) { abort(); return 0; }|} in
  Alcotest.(check int) "abort code" 134 o2.Eval.exit_code

let test_rand_deterministic () =
  let src =
    {|int main(void) { srand(7); printf("%d %d", rand() % 1000, rand() % 1000); return 0; }|}
  in
  Alcotest.(check string) "same seed, same stream" (output src) (output src)

let expect_runtime_error name src =
  match run src with
  | exception Cinterp.Value.Runtime_error _ -> ()
  | _ -> Alcotest.failf "%s: expected a runtime error" name

let test_memory_safety () =
  expect_runtime_error "out of bounds"
    {|int main(void) { int a[3]; a[5] = 1; return 0; }|};
  expect_runtime_error "null deref"
    {|int main(void) { int *p = NULL; return *p; }|};
  expect_runtime_error "use after free"
    {|int main(void) { int *p = (int *)malloc(4); free(p); return *p; }|};
  expect_runtime_error "dangling local"
    {|int *leak(void) { int x = 5; return &x; }
      int main(void) { int *p = leak(); return *p; }|};
  expect_runtime_error "division by zero"
    {|int main(void) { int z = 0; return 5 / z; }|}

let test_fuel_limit () =
  let c = Pipeline.compile ~name:"t" "int main(void){ int i; for(i=0;i<100000;i++); return 0; }" in
  match Eval.run ~fuel:100 c.Pipeline.prog with
  | exception Eval.Budget_exhausted (Eval.Fuel, o) ->
    (* the partial outcome carries the profile accumulated so far *)
    Alcotest.(check bool) "partial profile recorded" true
      (Cinterp.Profile.save o.Eval.profile <> "")
  | _ -> Alcotest.fail "fuel should run out"

let test_profile_counters () =
  let c =
    Pipeline.compile ~name:"t"
      {|
int helper(int x) { return x + 1; }
int main(void) {
  int i, s = 0;
  for (i = 0; i < 10; i++) {
    if (i % 2 == 0) s += helper(i);
  }
  printf("%d", s);
  return 0;
}
|}
  in
  let o = Pipeline.run_once c { Pipeline.argv = []; input = "" } in
  let prof = o.Eval.profile in
  let helper = Option.get (Cfg.find_fn c.Pipeline.prog "helper") in
  let main_fn = Option.get (Cfg.find_fn c.Pipeline.prog "main") in
  Alcotest.(check (float 0.0)) "helper invoked 5x" 5.0
    (Profile.invocations prof helper);
  Alcotest.(check (float 0.0)) "main invoked once" 1.0
    (Profile.invocations prof main_fn);
  (* branch counters: for-loop branch taken 10, not taken 1; if taken 5 *)
  let counters = Profile.fn_counters prof "main" in
  let branch_totals =
    List.map
      (fun (bid, br) ->
        ( br.Cfg.br_kind,
          counters.Profile.branch_taken.(bid),
          counters.Profile.branch_not_taken.(bid) ))
      (Cfg.branches main_fn)
  in
  List.iter
    (fun (kind, taken, not_taken) ->
      match kind with
      | Cfg.Kfor ->
        Alcotest.(check (float 0.0)) "loop taken" 10.0 taken;
        Alcotest.(check (float 0.0)) "loop exits once" 1.0 not_taken
      | Cfg.Kif ->
        Alcotest.(check (float 0.0)) "if taken" 5.0 taken;
        Alcotest.(check (float 0.0)) "if not taken" 5.0 not_taken
      | _ -> ())
    branch_totals;
  (* call sites: helper site counted 5, printf 1 *)
  let site_total = Array.fold_left ( +. ) 0.0 prof.Profile.site_counts in
  Alcotest.(check (float 0.0)) "site counts" 6.0 site_total

(* --- differential property: random expressions vs 32-bit reference --- *)

type iexpr =
  | Lit of int32
  | Add of iexpr * iexpr
  | Sub of iexpr * iexpr
  | Mul of iexpr * iexpr
  | Div of iexpr * iexpr
  | Rem of iexpr * iexpr
  | Shl of iexpr * iexpr
  | Shr of iexpr * iexpr
  | Band of iexpr * iexpr
  | Bor of iexpr * iexpr
  | Bxor of iexpr * iexpr
  | Neg of iexpr
  | Bnot of iexpr
  | Lt of iexpr * iexpr
  | Eq of iexpr * iexpr

let rec render = function
  | Lit n ->
    (* write negative literals parenthesized to avoid -- sequences *)
    if Int32.compare n 0l < 0 then Printf.sprintf "(%ld)" n
    else Int32.to_string n
  | Add (a, b) -> bin a "+" b
  | Sub (a, b) -> bin a "-" b
  | Mul (a, b) -> bin a "*" b
  | Div (a, b) -> bin a "/" b
  | Rem (a, b) -> bin a "%" b
  | Shl (a, b) -> bin a "<<" b
  | Shr (a, b) -> bin a ">>" b
  | Band (a, b) -> bin a "&" b
  | Bor (a, b) -> bin a "|" b
  | Bxor (a, b) -> bin a "^" b
  | Neg a -> Printf.sprintf "(-%s)" (render a)
  | Bnot a -> Printf.sprintf "(~%s)" (render a)
  | Lt (a, b) -> bin a "<" b
  | Eq (a, b) -> bin a "==" b

and bin a op b = Printf.sprintf "(%s %s %s)" (render a) op (render b)

(* Reference semantics: Int32 with C99 truncation; shifts masked to 5
   bits like the interpreter; division by zero yields None. *)
let rec eval_ref (e : iexpr) : int32 option =
  let open Int32 in
  let b2 f a b =
    match (eval_ref a, eval_ref b) with
    | Some x, Some y -> f x y
    | _ -> None
  in
  match e with
  | Lit n -> Some n
  | Add (a, b) -> b2 (fun x y -> Some (add x y)) a b
  | Sub (a, b) -> b2 (fun x y -> Some (sub x y)) a b
  | Mul (a, b) -> b2 (fun x y -> Some (mul x y)) a b
  | Div (a, b) ->
    b2 (fun x y -> if y = 0l then None else Some (div x y)) a b
  | Rem (a, b) ->
    b2 (fun x y -> if y = 0l then None else Some (rem x y)) a b
  | Shl (a, b) ->
    b2 (fun x y -> Some (shift_left x (to_int (logand y 31l)))) a b
  | Shr (a, b) ->
    b2 (fun x y -> Some (shift_right x (to_int (logand y 31l)))) a b
  | Band (a, b) -> b2 (fun x y -> Some (logand x y)) a b
  | Bor (a, b) -> b2 (fun x y -> Some (logor x y)) a b
  | Bxor (a, b) -> b2 (fun x y -> Some (logxor x y)) a b
  | Neg a -> Option.map neg (eval_ref a)
  | Bnot a -> Option.map lognot (eval_ref a)
  | Lt (a, b) -> b2 (fun x y -> Some (if compare x y < 0 then 1l else 0l)) a b
  | Eq (a, b) -> b2 (fun x y -> Some (if x = y then 1l else 0l)) a b

let gen_iexpr : iexpr QCheck.arbitrary =
  let open QCheck.Gen in
  let lit =
    oneof
      [ map Int32.of_int (int_range (-100) 100);
        oneofl [ 0l; 1l; -1l; 2147483647l; -2147483648l; 65536l ] ]
    >|= fun n -> Lit n
  in
  let rec node depth =
    if depth <= 0 then lit
    else
      let sub = node (depth - 1) in
      frequency
        [ (2, lit);
          (2, map2 (fun a b -> Add (a, b)) sub sub);
          (2, map2 (fun a b -> Sub (a, b)) sub sub);
          (2, map2 (fun a b -> Mul (a, b)) sub sub);
          (1, map2 (fun a b -> Div (a, b)) sub sub);
          (1, map2 (fun a b -> Rem (a, b)) sub sub);
          (1, map2 (fun a b -> Shl (a, b)) sub sub);
          (1, map2 (fun a b -> Shr (a, b)) sub sub);
          (1, map2 (fun a b -> Band (a, b)) sub sub);
          (1, map2 (fun a b -> Bor (a, b)) sub sub);
          (1, map2 (fun a b -> Bxor (a, b)) sub sub);
          (1, map (fun a -> Neg a) sub);
          (1, map (fun a -> Bnot a) sub);
          (1, map2 (fun a b -> Lt (a, b)) sub sub);
          (1, map2 (fun a b -> Eq (a, b)) sub sub) ]
  in
  QCheck.make (node 4) ~print:render

let prop_expression_semantics =
  QCheck.Test.make ~name:"interpreter matches 32-bit reference semantics"
    ~count:300 gen_iexpr (fun e ->
      match eval_ref e with
      | None -> QCheck.assume_fail () (* division by zero somewhere *)
      | Some expected ->
        let src =
          Printf.sprintf "int main(void) { printf(\"%%d\", %s); return 0; }"
            (render e)
        in
        output src = Int32.to_string expected)

let suite =
  [ Alcotest.test_case "arithmetic" `Quick test_arith;
    Alcotest.test_case "32-bit wrap" `Quick test_wrap32;
    Alcotest.test_case "char semantics" `Quick test_char_semantics;
    Alcotest.test_case "float semantics" `Quick test_float_semantics;
    Alcotest.test_case "logic" `Quick test_logic;
    Alcotest.test_case "pointers and arrays" `Quick test_pointers_arrays;
    Alcotest.test_case "structs" `Quick test_structs;
    Alcotest.test_case "strings and builtins" `Quick test_strings_builtins;
    Alcotest.test_case "printf formats" `Quick test_printf_formats;
    Alcotest.test_case "stdin" `Quick test_stdin;
    Alcotest.test_case "argv" `Quick test_argv;
    Alcotest.test_case "recursion" `Quick test_recursion;
    Alcotest.test_case "function pointers" `Quick test_function_pointers;
    Alcotest.test_case "static locals" `Quick test_static_locals;
    Alcotest.test_case "global initializers" `Quick test_global_initializers;
    Alcotest.test_case "switch semantics" `Quick test_switch_semantics;
    Alcotest.test_case "exit and abort" `Quick test_exit_and_abort;
    Alcotest.test_case "deterministic rand" `Quick test_rand_deterministic;
    Alcotest.test_case "memory safety" `Quick test_memory_safety;
    Alcotest.test_case "fuel limit" `Quick test_fuel_limit;
    Alcotest.test_case "profile counters" `Quick test_profile_counters;
    QCheck_alcotest.to_alcotest prop_expression_semantics ]
