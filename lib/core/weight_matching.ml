(* Wall's weight-matching metric (paper section 3).

   Given an estimate and a measurement for the same set of entities and a
   cutoff fraction q, select the top q-quantile by estimate and by actual
   value; the score is the actual weight captured by the estimated
   quantile divided by the actual weight of the actual quantile.

   When q*N is not an integer we round up and weight the extra item
   fractionally (paper footnote 2). A perfect estimate scores 1.0; ties in
   the actual values can also produce 1.0 with differing rankings. *)

type ranked = { index : int; value : float }

(* Indices sorted by value descending; equal values keep index order so
   the metric is deterministic. *)
let rank (values : float array) : ranked array =
  let items = Array.mapi (fun index value -> { index; value }) values in
  let cmp a b =
    match compare b.value a.value with 0 -> compare a.index b.index | c -> c
  in
  Array.sort cmp items;
  items

(* Where the top [cutoff] quantile of [n] items ends: the number of items
   taken whole and the fractional weight of the boundary item. q * n
   computed in floats can land a hair below the integer it mathematically
   equals (0.3 * 10 = 2.999...96), which would silently demote a whole
   item to fractional weight ~1; snap to the nearest integer when the
   product is within relative rounding error of it. *)
let boundary ~(n : int) ~(cutoff : float) : int * float =
  let exact = cutoff *. float_of_int n in
  let nearest = Float.round exact in
  let exact =
    if Float.abs (exact -. nearest) <= 1e-9 *. Float.max 1.0 exact then
      nearest
    else exact
  in
  let full = int_of_float (floor exact) in
  (full, exact -. float_of_int full)

(* Sum of [actual] over the top [cutoff] quantile of [order], with the
   boundary item weighted fractionally. *)
let quantile_weight (order : ranked array) (actual : float array)
    (cutoff : float) : float =
  let n = Array.length order in
  let full, frac = boundary ~n ~cutoff in
  let sum = ref 0.0 in
  for i = 0 to min full n - 1 do
    sum := !sum +. actual.(order.(i).index)
  done;
  if frac > 0.0 && full < n then
    sum := !sum +. (frac *. actual.(order.(full).index));
  !sum

(* The weight-matching score of [estimate] against [actual] at [cutoff]
   (a fraction in (0, 1]). Returns a value in [0, 1]. *)
let score ~(estimate : float array) ~(actual : float array)
    ~(cutoff : float) : float =
  if Array.length estimate <> Array.length actual then
    invalid_arg "Weight_matching.score: length mismatch";
  if cutoff <= 0.0 || cutoff > 1.0 then
    invalid_arg "Weight_matching.score: cutoff out of range";
  if Array.length actual = 0 then 1.0
  else begin
    let est_rank = rank estimate in
    let act_rank = rank actual in
    let denominator = quantile_weight act_rank actual cutoff in
    if denominator <= 0.0 then 1.0
    else quantile_weight est_rank actual cutoff /. denominator
  end

(* Weighted mean of per-entity scores, e.g. per-function intra-procedural
   scores weighted by dynamic invocation counts (paper section 4.2). *)
let weighted_mean (pairs : (float * float) list) : float =
  let wsum = List.fold_left (fun acc (_, w) -> acc +. w) 0.0 pairs in
  if wsum <= 0.0 then 0.0
  else
    List.fold_left (fun acc (score, w) -> acc +. (score *. w)) 0.0 pairs
    /. wsum
