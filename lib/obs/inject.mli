(** Deterministic, seeded fault injection.

    Instrumented code names an injection point and a stable key (the
    program or function being processed) and asks whether to fail
    there. Nothing fires unless armed — the disarmed fast path is a
    single atomic load, so output is byte-identical with the registry
    idle — and the chaos mode's decisions depend only on
    [(seed, point, key)], never on call order or domain scheduling, so
    a chaos run reproduces at any [--jobs] setting. *)

exception Injected of string * string
(** [Injected (point, key)] — the failure thrown by {!fire}. *)

val register : string -> unit
(** Declare an injection point so it appears in {!registered} before the
    first call reaches it. Idempotent. *)

val registered : unit -> string list
(** All known injection points, registration order. *)

val arm : ?key:string -> ?count:int -> string -> unit
(** [arm point] makes {!should_fire}/{!fire} trigger at [point] — for
    every key, or only [?key]; forever, or at most [?count] times
    (counted down per firing; a fail-once loader is [~count:1]). *)

val arm_chaos : seed:int -> ?rate:float -> unit -> unit
(** Arm every point probabilistically: a (point, key) pair fires iff a
    deterministic hash of [(seed, point, key)] lands below [rate]
    (default 0.3). *)

val chaos_seed : unit -> int option

val disarm_all : unit -> unit
(** Return the registry to the idle state. *)

val armed : unit -> bool

val should_fire : string -> key:string -> bool
(** Decision without a throw: lets call sites raise a domain-specific
    exception (e.g. a singular matrix) instead of {!Injected}. Consumes
    one firing from a [~count]-limited arming. *)

val fire : string -> key:string -> unit
(** Raise [Injected (point, key)] if the point is armed for this key. *)
