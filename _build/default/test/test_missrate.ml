(* Miss-rate metric tests: dynamic weighting, constant-branch exclusion,
   PSP optimality, and the profiling (majority) predictor. *)

module Pipeline = Core.Pipeline
module Missrate = Core.Missrate
module BP = Core.Branch_predictor
module Cfg = Cfg_ir.Cfg

let run_and_profile src runs =
  let c = Pipeline.compile ~name:"t" src in
  let profiles = Pipeline.profile_runs c runs in
  (c, profiles)

let test_perfectly_predicted () =
  (* a loop that iterates a lot: the loop heuristic is nearly always
     right; the only misses are the final exits *)
  let c, profiles =
    run_and_profile
      "int main(void) { int i, s = 0; for (i = 0; i < 999; i++) s += i; return s & 1; }"
      [ { Pipeline.argv = []; input = "" } ]
  in
  let rate =
    Missrate.rate c.Pipeline.prog (List.hd profiles)
      (Missrate.smart_predictor c.Pipeline.prog)
  in
  Alcotest.(check (float 1e-6)) "1 miss in 1000" (1.0 /. 1000.0) rate

let test_anti_predicted () =
  (* pointer heuristic says non-NULL, but the run always passes NULL *)
  let c, profiles =
    run_and_profile
      {|
int f(int *p) { if (p != NULL) return 1; return 0; }
int main(void) { int i, s = 0; for (i = 0; i < 50; i++) s += f(NULL); return s; }
|}
      [ { Pipeline.argv = []; input = "" } ]
  in
  let prog = c.Pipeline.prog in
  let p = List.hd profiles in
  let smart = Missrate.smart_predictor prog in
  (* f's branch is wrong 50/50 times; main's loop misses once in 51 *)
  let missed, total = Missrate.tally prog p smart in
  Alcotest.(check (float 1e-9)) "total dynamic branches" 101.0 total;
  Alcotest.(check (float 1e-9)) "misses" 51.0 missed

let test_constant_branches_excluded () =
  let c, profiles =
    run_and_profile
      {|
int main(void) {
  int i, s = 0;
  for (i = 0; i < 10; i++) {
    if (1) s++;           /* constant: predicted but not scored */
    if (sizeof(int) == 2) s--;
  }
  return s;
}
|}
      [ { Pipeline.argv = []; input = "" } ]
  in
  let _, total =
    Missrate.tally c.Pipeline.prog (List.hd profiles)
      (Missrate.smart_predictor c.Pipeline.prog)
  in
  (* only the for-branch counts: 11 executions *)
  Alcotest.(check (float 1e-9)) "constants excluded" 11.0 total

let test_switches_not_counted () =
  let c, profiles =
    run_and_profile
      {|
int main(void) {
  int i, s = 0;
  for (i = 0; i < 8; i++) {
    switch (i & 3) { case 0: s++; break; default: s--; break; }
  }
  return s;
}
|}
      [ { Pipeline.argv = []; input = "" } ]
  in
  let _, total =
    Missrate.tally c.Pipeline.prog (List.hd profiles)
      (Missrate.smart_predictor c.Pipeline.prog)
  in
  Alcotest.(check (float 1e-9)) "only the loop branch" 9.0 total

let biased_src =
  {|
int classify(int x) { if (x > 10) return 1; return 0; }
int main(int argc, char **argv) {
  int i, n = atoi(argv[1]), s = 0;
  for (i = 0; i < 100; i++) s += classify(i < n ? 100 : 0);
  return s & 1;
}
|}

let test_psp_is_floor () =
  (* PSP uses the evaluation profile itself: no static predictor can do
     better on any input mix. *)
  let c, profiles =
    run_and_profile biased_src
      [ { Pipeline.argv = [ "10" ]; input = "" };
        { Pipeline.argv = [ "60" ]; input = "" };
        { Pipeline.argv = [ "90" ]; input = "" } ]
  in
  let prog = c.Pipeline.prog in
  List.iter
    (fun p ->
      let psp = Missrate.psp_rate prog p in
      let smart = Missrate.rate prog p (Missrate.smart_predictor prog) in
      Alcotest.(check bool) "psp <= smart" true (psp <= smart +. 1e-9);
      List.iter
        (fun training ->
          let prof_rate =
            Missrate.rate prog p (Missrate.majority_predictor training)
          in
          Alcotest.(check bool) "psp <= profiling" true
            (psp <= prof_rate +. 1e-9))
        profiles)
    profiles

let test_majority_predictor_learns () =
  (* training on an identical distribution should beat the heuristic when
     the heuristic is wrong *)
  let c, profiles =
    run_and_profile
      {|
int f(int *p) { if (p == NULL) return 1; return 0; }
int main(void) { int i, s = 0; for (i = 0; i < 30; i++) s += f(NULL); return s; }
|}
      [ { Pipeline.argv = []; input = "" };
        { Pipeline.argv = []; input = "" } ]
  in
  let prog = c.Pipeline.prog in
  match profiles with
  | [ train; eval_p ] ->
    (* smart says NULL-test fails; reality: it always succeeds *)
    let smart = Missrate.rate prog eval_p (Missrate.smart_predictor prog) in
    let learned = Missrate.rate prog eval_p (Missrate.majority_predictor train) in
    Alcotest.(check bool) "training wins" true (learned < smart)
  | _ -> Alcotest.fail "two profiles expected"

let test_zero_when_no_branches () =
  let c, profiles =
    run_and_profile "int main(void) { return 3; }"
      [ { Pipeline.argv = []; input = "" } ]
  in
  Alcotest.(check (float 1e-9)) "no branches, no misses" 0.0
    (Missrate.rate c.Pipeline.prog (List.hd profiles)
       (Missrate.smart_predictor c.Pipeline.prog))

let suite =
  [ Alcotest.test_case "well-predicted loop" `Quick test_perfectly_predicted;
    Alcotest.test_case "anti-predicted branch" `Quick test_anti_predicted;
    Alcotest.test_case "constant exclusion" `Quick
      test_constant_branches_excluded;
    Alcotest.test_case "switches excluded" `Quick test_switches_not_counted;
    Alcotest.test_case "PSP is the floor" `Quick test_psp_is_floor;
    Alcotest.test_case "majority predictor learns" `Quick
      test_majority_predictor_learns;
    Alcotest.test_case "no branches" `Quick test_zero_when_no_branches ]
