examples/selective_optimization.ml: Array Cfg_ir Cinterp Core List Option Printf Suite
