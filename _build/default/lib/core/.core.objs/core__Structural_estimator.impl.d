lib/core/structural_estimator.ml: Array Cfg_ir List Loop_model
