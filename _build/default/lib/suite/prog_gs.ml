(* gs_mini: a PostScript-flavoured RPN stack machine whose ~45 operators
   are *all* dispatched through a function-pointer table — the analogue
   of ghostscript, where "some 650 functions (about half the functions in
   the program) are referenced indirectly. Here both the Markov and the
   simple heuristics do badly" (paper section 5.2.1). This program exists
   to reproduce that failure case: the pointer node must split its flow
   so many ways that no estimator can rank the operators. *)

let source = {|
#define STACK_MAX 256
#define REG_MAX 10

int stack[STACK_MAX];
int sp;
int regs[REG_MAX];
int op_count;
int errors;

/* ---- stack primitives ---- */

void push(int v) {
  if (sp < STACK_MAX) { stack[sp] = v; sp++; }
  else errors++;
}

int pop(void) {
  if (sp > 0) { sp--; return stack[sp]; }
  errors++;
  return 0;
}

int peek(int depth) {
  if (depth < sp) return stack[sp - 1 - depth];
  errors++;
  return 0;
}

/* ---- the operators; every one is called through the table ---- */

void op_add(void) { int b = pop(); push(pop() + b); }
void op_sub(void) { int b = pop(); push(pop() - b); }
void op_mul(void) { int b = pop(); push(pop() * b); }
void op_div(void) { int b = pop(); int a = pop(); push(b == 0 ? 0 : a / b); }
void op_mod(void) { int b = pop(); int a = pop(); push(b == 0 ? 0 : a % b); }
void op_neg(void) { push(-pop()); }
void op_abs(void) { int a = pop(); push(a < 0 ? -a : a); }
void op_inc(void) { push(pop() + 1); }
void op_dec(void) { push(pop() - 1); }
void op_dbl(void) { push(pop() * 2); }
void op_hlv(void) { push(pop() / 2); }
void op_sq(void) { int a = pop(); push(a * a); }
void op_sign(void) { int a = pop(); push(a > 0 ? 1 : (a < 0 ? -1 : 0)); }

void op_dup(void) { push(peek(0)); }
void op_pop(void) { pop(); }
void op_exch(void) { int b = pop(); int a = pop(); push(b); push(a); }
void op_over(void) { push(peek(1)); }
void op_rot(void) {
  int c = pop(); int b = pop(); int a = pop();
  push(b); push(c); push(a);
}
void op_depth(void) { push(sp); }
void op_clear(void) { sp = 0; }
void op_index(void) { push(peek(pop())); }

void op_eq(void) { int b = pop(); push(pop() == b); }
void op_ne(void) { int b = pop(); push(pop() != b); }
void op_lt(void) { int b = pop(); push(pop() < b); }
void op_gt(void) { int b = pop(); push(pop() > b); }
void op_le(void) { int b = pop(); push(pop() <= b); }
void op_ge(void) { int b = pop(); push(pop() >= b); }
void op_min(void) { int b = pop(); int a = pop(); push(a < b ? a : b); }
void op_max(void) { int b = pop(); int a = pop(); push(a > b ? a : b); }

void op_and(void) { int b = pop(); push(pop() & b); }
void op_or(void) { int b = pop(); push(pop() | b); }
void op_xor(void) { int b = pop(); push(pop() ^ b); }
void op_not(void) { push(~pop()); }
void op_shl(void) { int b = pop(); push(pop() << (b & 31)); }
void op_shr(void) { int b = pop(); push(pop() >> (b & 31)); }

void op_store(void) { int r = pop(); int v = pop(); if (r >= 0 && r < REG_MAX) regs[r] = v; }
void op_load(void) { int r = pop(); push(r >= 0 && r < REG_MAX ? regs[r] : 0); }

void op_sumall(void) {
  int s = 0, i;
  for (i = 0; i < sp; i++) s += stack[i];
  sp = 0;
  push(s);
}
void op_maxall(void) {
  int m, i;
  if (sp == 0) { push(0); return; }
  m = stack[0];
  for (i = 1; i < sp; i++) if (stack[i] > m) m = stack[i];
  sp = 0;
  push(m);
}
void op_ops(void) { push(op_count); }
void op_print(void) { printf("%d\n", peek(0)); }
void op_pstack(void) {
  int i;
  for (i = sp - 1; i >= 0; i--) printf("| %d\n", stack[i]);
}

struct opdef {
  char name[8];
  void (*fn)(void);
};

struct opdef op_table[44] = {
  { "add", op_add }, { "sub", op_sub }, { "mul", op_mul },
  { "div", op_div }, { "mod", op_mod }, { "neg", op_neg },
  { "abs", op_abs }, { "inc", op_inc }, { "dec", op_dec },
  { "dbl", op_dbl }, { "hlv", op_hlv }, { "sq", op_sq },
  { "sign", op_sign }, { "dup", op_dup }, { "pop", op_pop },
  { "exch", op_exch }, { "over", op_over }, { "rot", op_rot },
  { "depth", op_depth }, { "clear", op_clear }, { "index", op_index },
  { "eq", op_eq }, { "ne", op_ne }, { "lt", op_lt }, { "gt", op_gt },
  { "le", op_le }, { "ge", op_ge }, { "min", op_min }, { "max", op_max },
  { "and", op_and }, { "or", op_or }, { "xor", op_xor }, { "not", op_not },
  { "shl", op_shl }, { "shr", op_shr }, { "store", op_store },
  { "load", op_load }, { "sumall", op_sumall }, { "maxall", op_maxall },
  { "count", op_ops }, { "print", op_print }, { "pstack", op_pstack },
  { "clear2", op_clear }, { "dup2", op_dup }
};

/* ---- tokenizer + dispatch loop ---- */

char tok_buf[16];

int read_token(void) {
  int c, n = 0;
  c = getchar();
  while (c == ' ' || c == '\n' || c == '\t' || c == '\r') c = getchar();
  if (c == EOF) return 0;
  while (c != ' ' && c != '\n' && c != '\t' && c != '\r' && c != EOF) {
    if (n < 15) { tok_buf[n] = c; n++; }
    c = getchar();
  }
  tok_buf[n] = 0;
  return 1;
}

int is_number(char *s) {
  int i = 0;
  if (s[0] == '-' && s[1]) i = 1;
  if (!s[i]) return 0;
  while (s[i]) {
    if (s[i] < '0' || s[i] > '9') return 0;
    i++;
  }
  return 1;
}

void dispatch(char *name) {
  int i;
  for (i = 0; i < 44; i++) {
    if (strcmp(op_table[i].name, name) == 0) {
      op_table[i].fn();
      op_count++;
      return;
    }
  }
  errors++;
}

int main(void) {
  sp = 0;
  op_count = 0;
  errors = 0;
  while (read_token()) {
    if (is_number(tok_buf)) push(atoi(tok_buf));
    else dispatch(tok_buf);
  }
  printf("ops=%d errors=%d depth=%d top=%d\n", op_count, errors, sp,
         sp > 0 ? peek(0) : 0);
  return 0;
}
|}

(* RPN workloads with different operator mixes. *)
let input_arith =
  let buf = Buffer.create 1024 in
  for i = 1 to 60 do
    Buffer.add_string buf
      (Printf.sprintf "%d %d add %d mul 7 mod dup sq exch pop " i (i + 1)
         (i mod 9))
  done;
  Buffer.add_string buf "depth sumall print";
  Buffer.contents buf

let input_stack_games =
  let buf = Buffer.create 1024 in
  for i = 1 to 40 do
    Buffer.add_string buf
      (Printf.sprintf "%d %d %d rot over exch dup depth min max " i (i * 2)
         (i * 3))
  done;
  Buffer.add_string buf "maxall print";
  Buffer.contents buf

let input_bits =
  let buf = Buffer.create 1024 in
  for i = 0 to 50 do
    Buffer.add_string buf
      (Printf.sprintf "%d %d and %d or 3 shl 1 shr not neg abs " (i * 7)
         (i * 5) i)
  done;
  Buffer.add_string buf "sumall print";
  Buffer.contents buf

let input_registers =
  let buf = Buffer.create 1024 in
  for i = 0 to 30 do
    Buffer.add_string buf
      (Printf.sprintf "%d %d store %d load inc %d store " (i * i) (i mod 10)
         (i mod 10) (i mod 10))
  done;
  Buffer.add_string buf "depth print pstack";
  Buffer.contents buf

let program : Bench_prog.t =
  { Bench_prog.name = "gs_mini";
    description = "RPN stack machine; all operators via pointer table";
    analogue = "gs (ghostscript)";
    source;
    runs =
      [ Bench_prog.run ~input:input_arith ();
        Bench_prog.run ~input:input_stack_games ();
        Bench_prog.run ~input:input_bits ();
        Bench_prog.run ~input:input_registers () ] }
