lib/cfg_ir/dot.ml: Array Buffer Callgraph Cfg Cfront Hashtbl List Printf String
