(* Execution profiles: the counters the paper's evaluation needs.

   - basic-block execution counts per function,
   - per-branch taken / not-taken counts (branch prediction miss rates),
   - call-site execution counts (call-site ranking),
   - per-function executed "work" units (the Figure 10 cost model).

   Function invocation counts are the entry block's count. *)

module Cfg = Cfg_ir.Cfg

type fn_counters = {
  block_counts : float array;      (* indexed by block id *)
  branch_taken : float array;      (* indexed by block id of the branch *)
  branch_not_taken : float array;
}

type t = {
  fns : (string, fn_counters) Hashtbl.t;
  site_counts : float array;       (* indexed by call-site id *)
  mutable work : float;            (* total executed instruction units *)
}

let create (p : Cfg.program) : t =
  let fns = Hashtbl.create 32 in
  List.iter
    (fun fn ->
      let n = Cfg.n_blocks fn in
      Hashtbl.replace fns fn.Cfg.fn_name
        { block_counts = Array.make n 0.0;
          branch_taken = Array.make n 0.0;
          branch_not_taken = Array.make n 0.0 })
    p.Cfg.prog_fns;
  { fns;
    site_counts = Array.make (Array.length p.Cfg.prog_sites) 0.0;
    work = 0.0 }

let fn_counters (t : t) name : fn_counters = Hashtbl.find t.fns name

let block_counts (t : t) name : float array =
  (fn_counters t name).block_counts

(* Invocation count of a function = its entry block count. *)
let invocations (t : t) (fn : Cfg.fn) : float =
  (fn_counters t fn.Cfg.fn_name).block_counts.(fn.Cfg.fn_entry)

let total_blocks (t : t) : float =
  Hashtbl.fold
    (fun _ c acc -> acc +. Array.fold_left ( +. ) 0.0 c.block_counts)
    t.fns 0.0

(* ------------------------------------------------------------------ *)
(* Serialization: the paper's architecture separates the instrumenting
   compiler from an off-line analysis tool that "read both profile and
   analysis information"; a stable text format gives this reproduction
   the same workflow (run once, score many estimators later). *)

let save (t : t) : string =
  let buf = Buffer.create 1024 in
  let floats arr =
    String.concat " "
      (Array.to_list (Array.map (Printf.sprintf "%.17g") arr))
  in
  Buffer.add_string buf "profile-v1\n";
  Buffer.add_string buf (Printf.sprintf "work %.17g\n" t.work);
  Buffer.add_string buf
    (Printf.sprintf "sites %d %s\n" (Array.length t.site_counts)
       (floats t.site_counts));
  let names =
    Hashtbl.fold (fun name _ acc -> name :: acc) t.fns []
    |> List.sort compare
  in
  List.iter
    (fun name ->
      let c = Hashtbl.find t.fns name in
      Buffer.add_string buf
        (Printf.sprintf "fn %s %d\n" name (Array.length c.block_counts));
      Buffer.add_string buf ("blocks " ^ floats c.block_counts ^ "\n");
      Buffer.add_string buf ("taken " ^ floats c.branch_taken ^ "\n");
      Buffer.add_string buf ("nottaken " ^ floats c.branch_not_taken ^ "\n"))
    names;
  Buffer.contents buf

exception Parse_error of string

let load (text : string) : t =
  let lines = String.split_on_char '\n' text |> List.filter (( <> ) "") in
  let parse_floats s =
    String.split_on_char ' ' s
    |> List.filter (( <> ) "")
    |> List.map float_of_string
    |> Array.of_list
  in
  let fail msg = raise (Parse_error msg) in
  match lines with
  | "profile-v1" :: rest ->
    let fns = Hashtbl.create 16 in
    let work = ref 0.0 in
    let sites = ref [||] in
    let rec go = function
      | [] -> ()
      | line :: rest when String.length line > 5 && String.sub line 0 5 = "work "
        ->
        work := float_of_string (String.sub line 5 (String.length line - 5));
        go rest
      | line :: rest
        when String.length line > 6 && String.sub line 0 6 = "sites " -> begin
        let payload = String.sub line 6 (String.length line - 6) in
        match String.index_opt payload ' ' with
        | Some i ->
          let n = int_of_string (String.sub payload 0 i) in
          let arr =
            parse_floats (String.sub payload i (String.length payload - i))
          in
          if Array.length arr <> n then fail "site count mismatch";
          sites := arr;
          go rest
        | None ->
          if int_of_string payload <> 0 then fail "site count mismatch";
          sites := [||];
          go rest
      end
      | line :: blocks :: taken :: nottaken :: rest
        when String.length line > 3 && String.sub line 0 3 = "fn " -> begin
        match String.split_on_char ' ' line with
        | [ _; name; n ] ->
          let n = int_of_string n in
          let cut prefix s =
            let pl = String.length prefix in
            if String.length s >= pl && String.sub s 0 pl = prefix then
              String.sub s pl (String.length s - pl)
            else fail ("expected " ^ prefix)
          in
          let counters =
            { block_counts = parse_floats (cut "blocks " blocks);
              branch_taken = parse_floats (cut "taken " taken);
              branch_not_taken = parse_floats (cut "nottaken " nottaken) }
          in
          if Array.length counters.block_counts <> n then
            fail ("block count mismatch in " ^ name);
          Hashtbl.replace fns name counters;
          go rest
        | _ -> fail "malformed fn line"
      end
      | line :: _ -> fail ("unexpected line: " ^ line)
    in
    go rest;
    { fns; site_counts = !sites; work = !work }
  | _ -> fail "not a profile-v1 file"

(* Sum a list of profiles after normalizing each to the same total basic
   block count (paper section 3: "we normalized them to have the same
   total basic block counts, then summed each block's counts"). The
   common total is the mean of the inputs' totals. *)
let aggregate (p : Cfg.program) (profiles : t list) : t =
  match profiles with
  | [] -> invalid_arg "Profile.aggregate: empty"
  | _ ->
    let totals = List.map total_blocks profiles in
    let target =
      List.fold_left ( +. ) 0.0 totals /. float_of_int (List.length totals)
    in
    let out = create p in
    List.iter2
      (fun prof total ->
        let scale = if total > 0.0 then target /. total else 0.0 in
        Hashtbl.iter
          (fun name c ->
            let oc = fn_counters out name in
            Array.iteri
              (fun i v -> oc.block_counts.(i) <- oc.block_counts.(i) +. (scale *. v))
              c.block_counts;
            Array.iteri
              (fun i v -> oc.branch_taken.(i) <- oc.branch_taken.(i) +. (scale *. v))
              c.branch_taken;
            Array.iteri
              (fun i v ->
                oc.branch_not_taken.(i) <- oc.branch_not_taken.(i) +. (scale *. v))
              c.branch_not_taken)
          prof.fns;
        Array.iteri
          (fun i v -> out.site_counts.(i) <- out.site_counts.(i) +. (scale *. v))
          prof.site_counts;
        out.work <- out.work +. (scale *. prof.work))
      profiles totals;
    out
