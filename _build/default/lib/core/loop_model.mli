(** The paper's loop model (section 4.1): "a very simple loop model,
    predicting that all loops iterate five times". The standard count is
    read from {!Config} so the ablations can vary it. *)

(** The standard loop count (default 5). *)
val standard_iterations : unit -> float

(** P(loop test is true) = (k-1)/k for the standard count [k]. *)
val continue_probability : unit -> float

(** Test executions per loop entry (= the standard count). *)
val test_executions : unit -> float

(** Body executions per entry of a top-tested (while/for) loop. *)
val body_executions : unit -> float

(** Body executions per entry of a bottom-tested (do/while) loop. *)
val do_body_executions : unit -> float

(** Multiplier for recursive functions in the simple inter-procedural
    estimators (paper section 4.3). *)
val recursion_multiplier : unit -> float

(** Ceiling for per-SCC Markov subproblem solutions (paper footnote 6). *)
val scc_solution_ceiling : float

(** Replacement for impossible (> 1) direct-recursion arc weights (paper
    section 5.2.2). *)
val recursive_arc_probability : float
