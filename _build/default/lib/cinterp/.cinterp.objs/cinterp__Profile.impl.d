lib/cinterp/profile.ml: Array Buffer Cfg_ir Hashtbl List Printf String
